package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/baselines"
	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/strassen"
)

// RatioSeries is one figure's data: x values (order or log-volume) and the
// DGEFMM/other time ratio at each.
type RatioSeries struct {
	Label  string
	X      []float64
	Ratios []float64
}

// Mean returns the average ratio of the series — the summary number the
// paper quotes for each figure.
func (s RatioSeries) Mean() float64 {
	if len(s.Ratios) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, r := range s.Ratios {
		sum += r
	}
	return sum / float64(len(s.Ratios))
}

// sweepDims returns the square orders for a figure sweep on a kernel.
func sweepDims(kernel string, sc Scale) []int {
	tau := strassen.DefaultParams(kernel).Tau
	lo := tau + 1
	hi := sc.sq(tau*8, tau*3)
	step := maxi(8, (hi-lo)/sc.sq(14, 5))
	var dims []int
	for m := lo; m <= hi; m += step {
		dims = append(dims, m)
	}
	return dims
}

type rival func(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int)

// figureSweep measures time(DGEFMM)/time(rival) over square orders.
func figureSweep(kernel string, dims []int, alpha, beta float64, other rival, seed int64) RatioSeries {
	kern := kernelOf(kernel)
	cfg := configFor(kern)
	rng := rngFor(seed)
	var xs, rs []float64
	for _, m := range dims {
		a := matrix.NewRandom(m, m, rng)
		b := matrix.NewRandom(m, m, rng)
		c := matrix.NewRandom(m, m, rng)
		tF := bench.BestOf(2, func() {
			strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, alpha,
				a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
		})
		tO := bench.BestOf(2, func() {
			other(m, m, m, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
		})
		xs = append(xs, float64(m))
		rs = append(rs, tF/tO)
	}
	return RatioSeries{X: xs, Ratios: rs}
}

func printSeries(w io.Writer, title, xName string, s RatioSeries, paperNote string) {
	fprintln(w, title)
	tb := bench.NewTable(xName, "time DGEFMM / time rival")
	for i := range s.X {
		tb.AddRow(fmt.Sprintf("%.4g", s.X[i]), fmt.Sprintf("%.4f", s.Ratios[i]))
	}
	_, _ = tb.WriteTo(w)
	fprintln(w, fmt.Sprintf("average ratio: %.4f   (%s)", s.Mean(), paperNote))
}

// Figure3 reproduces the paper's Figure 3: DGEFMM versus the IBM-style
// multiply-only DGEMMS on the RS/6000 stand-in (blocked kernel), for both
// the α=1, β=0 case (where the paper's average was 1.052 — the vendor code
// slightly ahead) and the general case where the caller of DGEMMS must do
// the update itself (paper average 1.028 — the gap narrows, supporting
// DGEFMM's design of handling α, β natively).
func Figure3(w io.Writer, sc Scale) (simple, general RatioSeries) {
	kernel := "blocked"
	dims := sweepDims(kernel, sc)
	kern := kernelOf(kernel)
	cfgS := &baselines.DgemmsConfig{Kernel: kern, Tracker: memtrack.New()}

	simple = figureSweep(kernel, dims, 1, 0, func(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
		baselines.DGEMMS(cfgS, blas.NoTrans, blas.NoTrans, m, n, k, a, lda, b, ldb, c, ldc)
	}, 239)
	simple.Label = "α=1, β=0"
	general = figureSweep(kernel, dims, 1.0/3, 1.0/4, func(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
		baselines.DgemmsGeneral(cfgS, blas.NoTrans, blas.NoTrans, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	}, 241)
	general.Label = "general α, β"

	printSeries(w, "Figure 3: DGEFMM / DGEMMS (IBM ESSL style), α=1 β=0, RS/6000 stand-in", "order", simple,
		"paper average 1.052")
	printSeries(w, "Figure 3 (general α, β): DGEFMM / DGEMMS+update", "order", general,
		"paper average 1.028 — the gap narrows for general α, β")
	return simple, general
}

// Figure4 reproduces the paper's Figure 4: DGEFMM versus the CRAY-style
// SGEMMS (Strassen's original variant) on the C90 stand-in (vector
// kernel). Paper average 1.066 for α=1, β=0 and 1.052 general.
func Figure4(w io.Writer, sc Scale) (simple, general RatioSeries) {
	kernel := "vector"
	dims := sweepDims(kernel, sc)
	kern := kernelOf(kernel)
	cfg := &baselines.SgemmsConfig{Kernel: kern, Tracker: memtrack.New()}
	call := func(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
		baselines.SGEMMS(cfg, blas.NoTrans, blas.NoTrans, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	}
	simple = figureSweep(kernel, dims, 1, 0, call, 251)
	simple.Label = "α=1, β=0"
	general = figureSweep(kernel, dims, 1.0/3, 1.0/4, call, 253)
	general.Label = "general α, β"
	printSeries(w, "Figure 4: DGEFMM / SGEMMS (CRAY style), α=1 β=0, C90 stand-in", "order", simple,
		"paper average 1.066")
	printSeries(w, "Figure 4 (general α, β)", "order", general, "paper average 1.052")
	return simple, general
}

// Figure5 reproduces the paper's Figure 5: DGEFMM versus DGEMMW (Douglas et
// al. style) on square matrices with general α, β. Paper average 0.991
// (DGEFMM slightly ahead); with α=1, β=0 the paper saw 1.0089.
func Figure5(w io.Writer, sc Scale) (general, simple RatioSeries) {
	kernel := "blocked"
	dims := sweepDims(kernel, sc)
	kern := kernelOf(kernel)
	cfg := &baselines.DgemmwConfig{Kernel: kern, Tracker: memtrack.New()}
	call := func(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
		baselines.DGEMMW(cfg, blas.NoTrans, blas.NoTrans, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	}
	general = figureSweep(kernel, dims, 1.0/3, 1.0/4, call, 257)
	general.Label = "general α, β"
	simple = figureSweep(kernel, dims, 1, 0, call, 263)
	simple.Label = "α=1, β=0"
	printSeries(w, "Figure 5: DGEFMM / DGEMMW (Douglas et al. style), general α β, square", "order", general,
		"paper average 0.991 — STRASSEN2 wins the general case")
	printSeries(w, "Figure 5 (α=1, β=0)", "order", simple, "paper average 1.0089")
	return general, simple
}

// Figure6 reproduces the paper's Figure 6: DGEFMM versus DGEMMW on
// randomly-generated rectangular problems, plotted against Log10(2mnk).
// The random dimensions run from the rectangular parameters (τm, τk, τn)
// up to the sweep budget, as in the paper ("from m=75, k=125, or n=95 ...
// to 2050" on the RS/6000). Paper average 0.974 for general α, β.
func Figure6(w io.Writer, count int, sc Scale) RatioSeries {
	kernel := "blocked"
	if count == 0 {
		count = sc.sq(24, 6)
	}
	kern := kernelOf(kernel)
	params := strassen.DefaultParams(kernel)
	cfgF := configFor(kern)
	cfgW := &baselines.DgemmwConfig{Kernel: kern, Tracker: memtrack.New()}
	rng := rngFor(269)
	hi := sc.sq(params.Tau*5, params.Tau*2)
	lo := bench.Problem{M: params.TauM, K: params.TauK, N: params.TauN}
	probs := bench.RandomProblems(rng, count, lo, bench.Problem{M: hi, K: hi, N: hi})

	var s RatioSeries
	s.Label = "random rectangular, general α, β"
	alpha, beta := 1.0/3, 1.0/4
	for _, p := range probs {
		a := matrix.NewRandom(p.M, p.K, rng)
		b := matrix.NewRandom(p.K, p.N, rng)
		c := matrix.NewRandom(p.M, p.N, rng)
		tF := bench.Seconds(func() {
			strassen.DGEFMM(cfgF, blas.NoTrans, blas.NoTrans, p.M, p.N, p.K, alpha,
				a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
		})
		tW := bench.Seconds(func() {
			baselines.DGEMMW(cfgW, blas.NoTrans, blas.NoTrans, p.M, p.N, p.K, alpha,
				a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
		})
		s.X = append(s.X, math.Log10(p.Vol()))
		s.Ratios = append(s.Ratios, tF/tW)
	}
	printSeries(w, "Figure 6: DGEFMM / DGEMMW on random rectangular problems (x = Log10(2mnk))", "log10(2mnk)", s,
		"paper average 0.974 — hybrid cutoff+peeling ahead on rectangles")
	return s
}
