package experiments

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/perfmodel"
	"repro/internal/strassen"
)

// ModelRow is one machine's model-vs-measurement comparison.
type ModelRow struct {
	Machine        Machine
	Gemm, OneLevel perfmodel.Model
	Predicted      int
	Derived        int
	MeasuredTau    int
}

// Model runs the companion-report ([14]) exercise: fit the two-term cost
// model to DGEMM and one-level DGEFMM timings per machine stand-in, predict
// the square crossover from the fitted surfaces, and compare with (a) the
// crossover of the model *derived* analytically from the DGEMM fit and
// (b) the installed measured τ. The op-count model's prediction (13) is the
// common baseline all of them beat, which is the Section 3.4 argument for
// empirical tuning.
func Model(w io.Writer, sc Scale) []ModelRow {
	var rows []ModelRow
	for _, mach := range Machines() {
		kern := kernelOf(mach.Kernel)
		params := strassen.DefaultParams(mach.Kernel)
		hi := sc.sq(params.Tau*3, params.Tau*2)
		lo := maxi(8, params.Tau/4)
		step := maxi(4, (hi-lo)/10)
		var orders []int
		for m := lo; m <= hi; m += step {
			orders = append(orders, m)
		}
		gemmFit, err := perfmodel.Fit(perfmodel.CollectGemm(kern, orders, 41))
		if err != nil {
			continue
		}
		oneFit, err := perfmodel.Fit(perfmodel.CollectOneLevel(kern, orders, 42))
		if err != nil {
			continue
		}
		rows = append(rows, ModelRow{
			Machine:     mach,
			Gemm:        gemmFit,
			OneLevel:    oneFit,
			Predicted:   perfmodel.PredictSquareCrossover(gemmFit, oneFit, 8, hi*2),
			Derived:     perfmodel.PredictSquareCrossover(gemmFit, perfmodel.StrassenOneLevelFromGemm(gemmFit), 8, hi*2),
			MeasuredTau: params.Tau,
		})
	}

	fprintln(w, "Performance model ([14]): fitted t ≈ c3·mkn + c2·(mk+kn+mn) + c0 and predicted crossovers")
	tb := bench.NewTable("machine", "gemm R²", "model-predicted τ+1", "derived-from-gemm τ+1", "measured τ", "op-count")
	for _, r := range rows {
		tb.AddRow(r.Machine.Paper, fmt.Sprintf("%.4f", r.Gemm.R2), r.Predicted, r.Derived, r.MeasuredTau, perfmodel.OpCountCrossover())
	}
	_, _ = tb.WriteTo(w)
	for _, r := range rows {
		fprintln(w, fmt.Sprintf("  %s gemm:      %v", r.Machine.Paper, r.Gemm))
		fprintln(w, fmt.Sprintf("  %s one-level: %v", r.Machine.Paper, r.OneLevel))
	}
	return rows
}
