package experiments

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/cutoff"
	"repro/internal/strassen"
)

// Figure2 reproduces the paper's Figure 2: the ratio of DGEMM time to
// one-level DGEFMM time as a function of square matrix order, swept with
// step 1 so the odd-size fixup saw-tooth is visible, for α=1 and β=0.
// Ratios above 1 mean the Strassen level pays off.
func Figure2(w io.Writer, kernel string, lo, hi, step int, sc Scale) []cutoff.RatioPoint {
	kern := kernelOf(kernel)
	if lo == 0 || hi == 0 {
		// Centre the sweep on the kernel's calibrated crossover.
		tau := strassen.DefaultParams(kern.Name()).Tau
		span := sc.sq(tau/2, tau/4)
		lo, hi = tau-span, tau+span
		if lo < 8 {
			lo = 8
		}
	}
	if step == 0 {
		step = sc.sq(1, 4)
	}
	var dims []int
	for m := lo; m <= hi; m += step {
		dims = append(dims, m)
	}
	pts := cutoff.SquareRatioCurve(kern, dims, 1, 0, 201)

	fprintln(w, fmt.Sprintf("Figure 2: DGEMM/DGEFMM(one level) vs square order (kernel=%s, α=1, β=0)", kern.Name()))
	tb := bench.NewTable("m", "ratio", "winner")
	for _, p := range pts {
		winner := "DGEMM"
		if p.Ratio > 1 {
			winner = "Strassen"
		}
		tb.AddRow(p.Dim, fmt.Sprintf("%.4f", p.Ratio), winner)
	}
	_, _ = tb.WriteTo(w)
	tau := cutoff.ChooseCrossover(pts)
	fprintln(w, fmt.Sprintf("chosen square cutoff τ = %d (just below the stable Strassen-win region, as the paper chose 199 inside its 176–214 range)", tau))
	return pts
}

// Table2Row is one machine's measured square cutoff.
type Table2Row struct {
	Machine Machine
	Tau     int
}

// Table2 reproduces the paper's Table 2: the empirically determined square
// cutoff τ for each machine stand-in. The paper measured 199 (RS/6000),
// 129 (C90), 325 (T3D); ours differ in absolute value (different hardware
// and kernels) but reproduce the machine dependence.
func Table2(w io.Writer, sc Scale) []Table2Row {
	var rows []Table2Row
	for _, mach := range Machines() {
		kern := kernelOf(mach.Kernel)
		guess := strassen.DefaultParams(mach.Kernel).Tau
		lo := maxi(8, guess/3)
		hi := sc.sq(guess*3, guess*2)
		step := maxi(2, sc.sq(4, guess/4))
		tau, _ := cutoff.SquareCutoff(kern, lo, hi, step, 211)
		rows = append(rows, Table2Row{Machine: mach, Tau: tau})
	}
	fprintln(w, "Table 2: experimentally determined square cutoffs")
	tb := bench.NewTable("machine (paper)", "kernel (ours)", "square cutoff τ")
	for _, r := range rows {
		tb.AddRow(r.Machine.Paper, r.Machine.Kernel, r.Tau)
	}
	_, _ = tb.WriteTo(w)
	fprintln(w, "paper measured: RS/6000 τ=199, C90 τ=129, T3D τ=325")
	return rows
}

// Table3Row is one machine's rectangular cutoff parameters.
type Table3Row struct {
	Machine Machine
	Params  strassen.Params
}

// Table3 reproduces the paper's Table 3: the rectangular parameters
// τm, τk, τn measured with the other two dimensions fixed large (the paper
// used 2000, or 1500 on the T3D "to reduce the time to run the tests"; we
// scale the fixed dimension to the pure-Go single-CPU budget for the same
// reason).
func Table3(w io.Writer, sc Scale) []Table3Row {
	var rows []Table3Row
	for _, mach := range Machines() {
		kern := kernelOf(mach.Kernel)
		guess := strassen.DefaultParams(mach.Kernel)
		fixed := sc.sq(512, 160)
		if mach.Kernel == "naive" {
			fixed = sc.sq(320, 128) // the slow kernel gets the smaller sweep, like the T3D
		}
		lo := maxi(4, guess.TauM/3)
		hi := sc.sq(guess.Tau*2, guess.Tau)
		step := maxi(2, sc.sq(4, 16))
		p := cutoff.RectParams(kern, lo, hi, step, fixed, 223)
		p.Tau = guess.Tau
		rows = append(rows, Table3Row{Machine: mach, Params: p})
	}
	fprintln(w, "Table 3: experimentally determined rectangular cutoff parameters (α=1, β=0)")
	tb := bench.NewTable("machine (paper)", "kernel (ours)", "τm", "τk", "τn", "τm+τk+τn", "square τ")
	for _, r := range rows {
		tb.AddRow(r.Machine.Paper, r.Machine.Kernel, r.Params.TauM, r.Params.TauK, r.Params.TauN,
			r.Params.TauM+r.Params.TauK+r.Params.TauN, r.Params.Tau)
	}
	_, _ = tb.WriteTo(w)
	fprintln(w, "paper measured: RS/6000 (75,125,95) Σ=295; C90 (80,45,20) Σ=145; T3D (125,75,109) Σ=309")
	return rows
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
