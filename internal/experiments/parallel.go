package experiments

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/sched"
)

// ParallelRow is one worker count's measurement on the speedup-vs-workers
// sweep.
type ParallelRow struct {
	Workers int
	Seconds float64
	Speedup float64
}

// ParallelScaling measures the speedup-vs-workers curve of the task
// runtime — the multi-core experiment the paper's Section 5 leaves as
// future work. One DGEFMM per worker count w runs its product DAG (and,
// for the packed kernel, its threaded leaf loops) on a dedicated w-worker
// runtime; speedups are against the plain sequential engine, so the
// one-worker row exposes the scheduler's overhead floor. Worker counts
// double from 1 up to GOMAXPROCS (always including GOMAXPROCS); on a
// single-CPU host every row collapses to roughly the sequential time and
// the curve is meaningless except as an overhead check — see
// EXPERIMENTS.md for the methodology.
func ParallelScaling(w io.Writer, order int, sc Scale) []ParallelRow {
	kern := kernelOf("")
	if order <= 0 {
		order = sc.sq(512, 128)
	}
	seq := configFor(kern)
	tSeq := timeConfig(seq, order, 1, 0, 307)

	var counts []int
	max := runtime.GOMAXPROCS(0)
	for c := 1; c < max; c *= 2 {
		counts = append(counts, c)
	}
	counts = append(counts, max)
	if len(counts) > 1 && counts[len(counts)-2] == max {
		counts = counts[:len(counts)-1]
	}

	rows := make([]ParallelRow, 0, len(counts))
	tb := bench.NewTable("workers", "seconds", "speedup")
	tb.AddRow("seq", fmt.Sprintf("%.4f", tSeq), "1.00")
	for _, c := range counts {
		rt := sched.New(c, 307)
		cfg := configFor(kern)
		cfg.Sched = rt
		t := timeConfig(cfg, order, 1, 0, 307)
		rt.Close()
		rows = append(rows, ParallelRow{Workers: c, Seconds: t, Speedup: tSeq / t})
		tb.AddRow(c, fmt.Sprintf("%.4f", t), fmt.Sprintf("%.2f", tSeq/t))
	}
	fprintln(w, fmt.Sprintf("Parallel scaling: order %d, kernel %s, GOMAXPROCS %d",
		order, blas.CloneKernel(kern).Name(), max))
	_, _ = tb.WriteTo(w)
	return rows
}
