package blas

import (
	"math/rand"
	"testing"
)

// Negative increments follow the FORTRAN convention: the vector is walked
// backwards from its far end. These tests pin that behavior for the Level 1
// and Level 2 routines that accept signed increments.

func TestDgemvNegativeIncX(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m, n := 5, 4
	a := randMat(rng, m, n, m)
	xf := randVec(rng, n) // forward
	xr := make([]float64, n)
	for i := range xf {
		xr[n-1-i] = xf[i] // reversed storage
	}
	y1 := make([]float64, m)
	y2 := make([]float64, m)
	Dgemv(NoTrans, m, n, 1.5, a, m, xf, 1, 0, y1, 1)
	Dgemv(NoTrans, m, n, 1.5, a, m, xr, -1, 0, y2, 1)
	for i := range y1 {
		if !almostEq(y1[i], y2[i], 1e-14) {
			t.Fatalf("y[%d]: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestDgemvNegativeIncY(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m, n := 6, 3
	a := randMat(rng, m, n, m)
	x := randVec(rng, n)
	y1 := randVec(rng, m)
	y2 := make([]float64, m)
	for i := range y1 {
		y2[m-1-i] = y1[i]
	}
	Dgemv(NoTrans, m, n, 2, a, m, x, 1, 0.5, y1, 1)
	Dgemv(NoTrans, m, n, 2, a, m, x, 1, 0.5, y2, -1)
	for i := range y1 {
		if !almostEq(y1[i], y2[m-1-i], 1e-14) {
			t.Fatalf("y[%d] mismatch under reversed storage", i)
		}
	}
}

func TestDgerNegativeIncrements(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m, n := 4, 5
	x := randVec(rng, m)
	y := randVec(rng, n)
	xr := make([]float64, m)
	for i := range x {
		xr[m-1-i] = x[i]
	}
	yr := make([]float64, n)
	for i := range y {
		yr[n-1-i] = y[i]
	}
	a1 := randMat(rng, m, n, m)
	a2 := append([]float64(nil), a1...)
	Dger(m, n, 1.25, x, 1, y, 1, a1, m)
	Dger(m, n, 1.25, xr, -1, yr, -1, a2, m)
	for i := range a1 {
		if !almostEq(a1[i], a2[i], 1e-14) {
			t.Fatalf("a[%d]: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestDaxpyBothNegative(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	// Both reversed: pairs (x[2],y[2]) ... so same as forward.
	want := []float64{10 + 2*1, 20 + 2*2, 30 + 2*3}
	Daxpy(3, 2, x, -1, y, -1)
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestDcopyMixedSigns(t *testing.T) {
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	// Forward x into backward y: y[2]=x[0], y[1]=x[1], y[0]=x[2].
	Dcopy(3, x, 1, y, -1)
	if y[0] != 3 || y[1] != 2 || y[2] != 1 {
		t.Fatalf("y = %v", y)
	}
}

func TestDswapNegative(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{9, 8}
	Dswap(2, x, -1, y, 1)
	// x traversed backwards: pairs (x[1],y[0]), (x[0],y[1]).
	if x[1] != 9 || x[0] != 8 || y[0] != 2 || y[1] != 1 {
		t.Fatalf("x=%v y=%v", x, y)
	}
}
