package blas

// Level 2 BLAS: matrix-vector kernels. DGEMV and DGER are the fixup
// primitives of the paper's dynamic peeling (Section 3.3): the rank-one
// update a12·b21 is a DGER and the border row/column products are DGEMVs.

// Dgemv computes y ← alpha*op(A)*x + beta*y where A is m×n column-major.
func Dgemv(trans Transpose, m, n int, alpha float64, a []float64, lda int,
	x []float64, incX int, beta float64, y []float64, incY int) {
	if !trans.valid() {
		xerbla("DGEMV", 1, "bad trans")
	}
	if m < 0 {
		xerbla("DGEMV", 2, "m < 0")
	}
	if n < 0 {
		xerbla("DGEMV", 3, "n < 0")
	}
	checkLD("DGEMV", 6, "a", lda, m)
	if m == 0 || n == 0 {
		return
	}
	checkMatSize("DGEMV", "a", a, m, n, lda)
	lenX, lenY := n, m
	if trans.IsTrans() {
		lenX, lenY = m, n
	}
	checkVecSize("DGEMV", "x", x, lenX, incX)
	checkVecSize("DGEMV", "y", y, lenY, incY)

	// y ← beta*y
	if beta != 1 {
		iy := startIdx(lenY, incY)
		if beta == 0 {
			for i := 0; i < lenY; i++ {
				y[iy] = 0
				iy += incY
			}
		} else {
			for i := 0; i < lenY; i++ {
				y[iy] *= beta
				iy += incY
			}
		}
	}
	if alpha == 0 {
		return
	}

	if !trans.IsTrans() {
		// y ← y + alpha*A*x: accumulate columns (AXPY form).
		ix := startIdx(n, incX)
		if incY == 1 {
			yv := y[:m]
			for j := 0; j < n; j++ {
				t := alpha * x[ix]
				ix += incX
				if t == 0 {
					continue
				}
				col := a[j*lda : j*lda+m]
				for i := range col {
					yv[i] += t * col[i]
				}
			}
			return
		}
		for j := 0; j < n; j++ {
			t := alpha * x[ix]
			ix += incX
			if t == 0 {
				continue
			}
			iy := startIdx(m, incY)
			col := a[j*lda : j*lda+m]
			for i := 0; i < m; i++ {
				y[iy] += t * col[i]
				iy += incY
			}
		}
		return
	}

	// y ← y + alpha*Aᵀ*x: dot-product form.
	iy := startIdx(n, incY)
	for j := 0; j < n; j++ {
		col := a[j*lda : j*lda+m]
		var s float64
		if incX == 1 {
			xv := x[:m]
			for i := range col {
				s += col[i] * xv[i]
			}
		} else {
			ix := startIdx(m, incX)
			for i := 0; i < m; i++ {
				s += col[i] * x[ix]
				ix += incX
			}
		}
		y[iy] += alpha * s
		iy += incY
	}
}

// Dger computes the rank-one update A ← A + alpha*x*yᵀ where A is m×n.
func Dger(m, n int, alpha float64, x []float64, incX int, y []float64, incY int,
	a []float64, lda int) {
	if m < 0 {
		xerbla("DGER", 1, "m < 0")
	}
	if n < 0 {
		xerbla("DGER", 2, "n < 0")
	}
	checkLD("DGER", 9, "a", lda, m)
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	checkMatSize("DGER", "a", a, m, n, lda)
	checkVecSize("DGER", "x", x, m, incX)
	checkVecSize("DGER", "y", y, n, incY)

	iy := startIdx(n, incY)
	for j := 0; j < n; j++ {
		t := alpha * y[iy]
		iy += incY
		if t == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		if incX == 1 {
			xv := x[:m]
			for i := range col {
				col[i] += t * xv[i]
			}
		} else {
			ix := startIdx(m, incX)
			for i := 0; i < m; i++ {
				col[i] += t * x[ix]
				ix += incX
			}
		}
	}
}

// Dsymv computes y ← alpha*A*x + beta*y for symmetric A with only the uplo
// triangle referenced.
func Dsymv(uplo Uplo, n int, alpha float64, a []float64, lda int,
	x []float64, incX int, beta float64, y []float64, incY int) {
	if !uplo.valid() {
		xerbla("DSYMV", 1, "bad uplo")
	}
	if n < 0 {
		xerbla("DSYMV", 2, "n < 0")
	}
	checkLD("DSYMV", 5, "a", lda, n)
	if n == 0 {
		return
	}
	checkMatSize("DSYMV", "a", a, n, n, lda)
	checkVecSize("DSYMV", "x", x, n, incX)
	checkVecSize("DSYMV", "y", y, n, incY)

	iy := startIdx(n, incY)
	for i := 0; i < n; i++ {
		if beta == 0 {
			y[iy] = 0
		} else {
			y[iy] *= beta
		}
		iy += incY
	}
	if alpha == 0 {
		return
	}
	upper := uplo.isUpper()
	ix0, iy0 := startIdx(n, incX), startIdx(n, incY)
	for j := 0; j < n; j++ {
		xj := x[ix0+j*incX]
		for i := 0; i < n; i++ {
			var aij float64
			if i == j || (i < j) == upper {
				aij = a[i+j*lda]
			} else {
				aij = a[j+i*lda]
			}
			y[iy0+i*incY] += alpha * aij * xj
		}
	}
}

// Dtrmv computes x ← op(A)*x for triangular A.
func Dtrmv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int,
	x []float64, incX int) {
	if !uplo.valid() {
		xerbla("DTRMV", 1, "bad uplo")
	}
	if !trans.valid() {
		xerbla("DTRMV", 2, "bad trans")
	}
	if !diag.valid() {
		xerbla("DTRMV", 3, "bad diag")
	}
	if n < 0 {
		xerbla("DTRMV", 4, "n < 0")
	}
	checkLD("DTRMV", 6, "a", lda, n)
	if n == 0 {
		return
	}
	checkMatSize("DTRMV", "a", a, n, n, lda)
	checkVecSize("DTRMV", "x", x, n, incX)

	upper := uplo.isUpper()
	unit := diag.isUnit()
	at := func(i, j int) float64 { return a[i+j*lda] }
	x0 := startIdx(n, incX)
	xi := func(i int) int { return x0 + i*incX }

	if !trans.IsTrans() {
		if upper {
			for i := 0; i < n; i++ {
				var s float64
				if unit {
					s = x[xi(i)]
				} else {
					s = at(i, i) * x[xi(i)]
				}
				for j := i + 1; j < n; j++ {
					s += at(i, j) * x[xi(j)]
				}
				x[xi(i)] = s
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				var s float64
				if unit {
					s = x[xi(i)]
				} else {
					s = at(i, i) * x[xi(i)]
				}
				for j := 0; j < i; j++ {
					s += at(i, j) * x[xi(j)]
				}
				x[xi(i)] = s
			}
		}
		return
	}
	// x ← Aᵀ x
	if upper {
		for i := n - 1; i >= 0; i-- {
			var s float64
			if unit {
				s = x[xi(i)]
			} else {
				s = at(i, i) * x[xi(i)]
			}
			for j := 0; j < i; j++ {
				s += at(j, i) * x[xi(j)]
			}
			x[xi(i)] = s
		}
	} else {
		for i := 0; i < n; i++ {
			var s float64
			if unit {
				s = x[xi(i)]
			} else {
				s = at(i, i) * x[xi(i)]
			}
			for j := i + 1; j < n; j++ {
				s += at(j, i) * x[xi(j)]
			}
			x[xi(i)] = s
		}
	}
}

// Dtrsv solves op(A)*x = b in place (x holds b on entry, the solution on
// exit) for triangular A.
func Dtrsv(uplo Uplo, trans Transpose, diag Diag, n int, a []float64, lda int,
	x []float64, incX int) {
	if !uplo.valid() {
		xerbla("DTRSV", 1, "bad uplo")
	}
	if !trans.valid() {
		xerbla("DTRSV", 2, "bad trans")
	}
	if !diag.valid() {
		xerbla("DTRSV", 3, "bad diag")
	}
	if n < 0 {
		xerbla("DTRSV", 4, "n < 0")
	}
	checkLD("DTRSV", 6, "a", lda, n)
	if n == 0 {
		return
	}
	checkMatSize("DTRSV", "a", a, n, n, lda)
	checkVecSize("DTRSV", "x", x, n, incX)

	upper := uplo.isUpper()
	unit := diag.isUnit()
	at := func(i, j int) float64 { return a[i+j*lda] }
	x0 := startIdx(n, incX)
	xi := func(i int) int { return x0 + i*incX }

	if !trans.IsTrans() {
		if upper {
			for i := n - 1; i >= 0; i-- {
				s := x[xi(i)]
				for j := i + 1; j < n; j++ {
					s -= at(i, j) * x[xi(j)]
				}
				if !unit {
					s /= at(i, i)
				}
				x[xi(i)] = s
			}
		} else {
			for i := 0; i < n; i++ {
				s := x[xi(i)]
				for j := 0; j < i; j++ {
					s -= at(i, j) * x[xi(j)]
				}
				if !unit {
					s /= at(i, i)
				}
				x[xi(i)] = s
			}
		}
		return
	}
	// Solve Aᵀ x = b.
	if upper {
		for i := 0; i < n; i++ {
			s := x[xi(i)]
			for j := 0; j < i; j++ {
				s -= at(j, i) * x[xi(j)]
			}
			if !unit {
				s /= at(i, i)
			}
			x[xi(i)] = s
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			s := x[xi(i)]
			for j := i + 1; j < n; j++ {
				s -= at(j, i) * x[xi(j)]
			}
			if !unit {
				s /= at(i, i)
			}
			x[xi(i)] = s
		}
	}
}
