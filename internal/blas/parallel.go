package blas

import (
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// Cloner is implemented by kernels that keep internal state (packing
// buffers) and therefore cannot be shared across goroutines: Clone returns
// an independent kernel with the same tuning.
type Cloner interface {
	// Clone returns a kernel safe to use concurrently with the receiver.
	Clone() Kernel
}

// Clone implements Cloner: a fresh BlockedKernel with the same block sizes
// but its own packing buffers.
func (k *BlockedKernel) Clone() Kernel {
	return &BlockedKernel{MC: k.MC, KC: k.KC, NC: k.NC}
}

// CloneKernel returns a goroutine-independent copy of k: stateful kernels
// are cloned via Cloner, stateless ones are returned as-is. Nil selects
// DefaultKernel.
func CloneKernel(k Kernel) Kernel {
	if k == nil {
		k = DefaultKernel
	}
	if c, ok := k.(Cloner); ok {
		return c.Clone()
	}
	return k
}

// ParallelKernel parallelizes any base kernel across goroutines by
// splitting C into column panels (each C column depends only on the
// corresponding op(B) columns, so panels are independent). It addresses the
// paper's Section 5 future-work item of extending the implementation to use
// parallelism at the BLAS level: DGEFMM built on a parallel DGEMM
// parallelizes both the below-cutoff multiplies and, through the peeling
// fixups staying serial, preserves exactly the sequential results up to
// floating-point-identical arithmetic (each output element is computed by
// the same scalar operations in the same order as in the base kernel).
type ParallelKernel struct {
	// Workers is the number of goroutines; values < 2 degrade to the base
	// kernel inline.
	Workers int
	// Base is the per-worker kernel; nil selects DefaultKernel. Stateful
	// bases are cloned per worker.
	Base Kernel

	mu    sync.Mutex
	pool  []Kernel
	stats *parallelStats
}

// parallelStats accumulates dispatch accounting. It is shared between a
// kernel and its clones (the Strassen parallel schedule clones the kernel
// per product goroutine), so Stats on any of them reports the whole
// family's activity.
type parallelStats struct {
	dispatches atomic.Int64
	goroutines atomic.Int64
}

// statsRef lazily allocates the shared stats block.
func (p *ParallelKernel) statsRef() *parallelStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stats == nil {
		p.stats = &parallelStats{}
	}
	return p.stats
}

// Stats returns cumulative dispatch counts across the kernel and all its
// clones: how many MulAdd calls were dispatched and how many worker
// goroutines those calls spawned (inline below-threshold calls spawn none).
func (p *ParallelKernel) Stats() (dispatches, goroutines int64) {
	st := p.statsRef()
	return st.dispatches.Load(), st.goroutines.Load()
}

// Name implements Kernel.
func (p *ParallelKernel) Name() string {
	base := p.Base
	if base == nil {
		base = DefaultKernel
	}
	return "parallel(" + base.Name() + ")"
}

// Clone implements Cloner. The clone shares the parent's dispatch stats.
func (p *ParallelKernel) Clone() Kernel {
	return &ParallelKernel{Workers: p.Workers, Base: p.Base, stats: p.statsRef()}
}

// acquire hands out a per-worker kernel, reusing pooled clones.
func (p *ParallelKernel) acquire() Kernel {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.pool); n > 0 {
		k := p.pool[n-1]
		p.pool = p.pool[:n-1]
		return k
	}
	return CloneKernel(p.Base)
}

func (p *ParallelKernel) release(k Kernel) {
	p.mu.Lock()
	p.pool = append(p.pool, k)
	p.mu.Unlock()
}

// minParallelCols is the smallest panel worth a goroutine; below it the
// spawn overhead dominates.
const minParallelCols = 32

// taskThreader is the structural interface of a base whose own loop nest
// can thread through the work-stealing runtime (kernel.Packed's
// MulAddTasks). Structural because blas cannot import internal/kernel
// (kernel builds on blas).
type taskThreader interface {
	Kernel
	MulAddTasks(sub sched.Submitter, threads int, transA, transB Transpose, m, n, k int, alpha float64,
		a []float64, lda int, b []float64, ldb int, c []float64, ldc int)
}

// MulAdd implements Kernel. A base that can thread its own MC loop
// (taskThreader) runs on the process-shared work-stealing runtime —
// per-block work distribution with stealing, one core budget shared with
// every other runtime user, and bit-for-bit the base's sequential results.
// Other bases keep the legacy goroutine-per-column-panel split, whose
// per-element arithmetic is also identical to the base's.
func (p *ParallelKernel) MulAdd(transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	st := p.statsRef()
	st.dispatches.Add(1)
	if tt, ok := p.Base.(taskThreader); ok && p.Workers > 1 {
		tt.MulAddTasks(sched.Shared(), p.Workers, transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
		return
	}
	workers := p.Workers
	if workers > n/minParallelCols {
		workers = n / minParallelCols
	}
	if workers < 2 {
		kern := p.acquire()
		kern.MulAdd(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
		p.release(kern)
		return
	}

	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		j0 := w * chunk
		if j0 >= n {
			break
		}
		nw := chunk
		if j0+nw > n {
			nw = n - j0
		}
		wg.Add(1)
		st.goroutines.Add(1)
		go func(j0, nw int) {
			defer wg.Done()
			kern := p.acquire()
			defer p.release(kern)
			// op(B)'s columns j0..j0+nw map to storage columns (NoTrans) or
			// storage rows (Trans); C's columns shift by j0·ldc either way.
			bw := b
			if !transB.IsTrans() {
				bw = b[j0*ldb:]
			} else {
				bw = b[j0:]
			}
			kern.MulAdd(transA, transB, m, nw, k, alpha, a, lda, bw, ldb, c[j0*ldc:], ldc)
		}(j0, nw)
	}
	wg.Wait()
}
