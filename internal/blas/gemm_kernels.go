package blas

// Kernel is a DGEMM inner engine: it accumulates C ← C + alpha·op(A)·op(B)
// on column-major storage. Dgemm handles parameter validation and the beta
// scaling before invoking the kernel, so kernels only implement the
// multiply-accumulate core.
//
// The three implementations stand in for the paper's three machines (see
// DESIGN.md §2): the relative cost of the kernel versus the O(n²) add and
// fixup work is what makes the Strassen cutoff machine-dependent, so varying
// the kernel reproduces the paper's machine-to-machine variation in
// Tables 2 and 3.
type Kernel interface {
	// Name identifies the kernel in reports ("naive", "vector", "blocked").
	Name() string
	// MulAdd computes C ← C + alpha*op(A)*op(B), where op(A) is m×k and
	// op(B) is k×n. alpha is nonzero.
	MulAdd(transA, transB Transpose, m, n, k int, alpha float64,
		a []float64, lda int, b []float64, ldb int, c []float64, ldc int)
}

// NaiveKernel is a straightforward untuned triple loop (dot-product inner
// loop). It models an untuned microprocessor BLAS: low absolute flop rate, so
// the O(n²) Strassen overheads are comparatively cheap and the cutoff is low.
type NaiveKernel struct{}

// Name implements Kernel.
func (NaiveKernel) Name() string { return "naive" }

// MulAdd implements Kernel.
func (NaiveKernel) MulAdd(transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	ta, tb := transA.IsTrans(), transB.IsTrans()
	for j := 0; j < n; j++ {
		cc := c[j*ldc : j*ldc+m]
		for i := 0; i < m; i++ {
			var s float64
			switch {
			case !ta && !tb:
				bc := b[j*ldb : j*ldb+k]
				for l := 0; l < k; l++ {
					s += a[i+l*lda] * bc[l]
				}
			case ta && !tb:
				ac := a[i*lda : i*lda+k]
				bc := b[j*ldb : j*ldb+k]
				for l := 0; l < k; l++ {
					s += ac[l] * bc[l]
				}
			case !ta && tb:
				for l := 0; l < k; l++ {
					s += a[i+l*lda] * b[j+l*ldb]
				}
			default: // ta && tb
				ac := a[i*lda : i*lda+k]
				for l := 0; l < k; l++ {
					s += ac[l] * b[j+l*ldb]
				}
			}
			cc[i] += alpha * s
		}
	}
}

// VectorKernel is a column-oriented, AXPY-based kernel in the style of code
// tuned for a vector machine (long unit-stride vector operations on whole
// columns). It models the CRAY C90's SGEMM: very fast on long columns, which
// pushes the crossover with Strassen to small-to-moderate sizes because the
// Strassen adds are also vectorizable.
type VectorKernel struct{}

// Name implements Kernel.
func (VectorKernel) Name() string { return "vector" }

// MulAdd implements Kernel.
func (VectorKernel) MulAdd(transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	ta, tb := transA.IsTrans(), transB.IsTrans()
	switch {
	case !ta && !tb:
		// C[:,j] += alpha*B[l,j] * A[:,l] — pure column AXPYs.
		for j := 0; j < n; j++ {
			cc := c[j*ldc : j*ldc+m]
			bc := b[j*ldb : j*ldb+k]
			for l := 0; l < k; l++ {
				t := alpha * bc[l]
				if t == 0 {
					continue
				}
				ac := a[l*lda : l*lda+m]
				for i := range cc {
					cc[i] += t * ac[i]
				}
			}
		}
	case ta && !tb:
		// C[i,j] += alpha*dot(A[:,i], B[:,j]) — column dot products.
		for j := 0; j < n; j++ {
			cc := c[j*ldc : j*ldc+m]
			bc := b[j*ldb : j*ldb+k]
			for i := 0; i < m; i++ {
				ac := a[i*lda : i*lda+k]
				var s float64
				for l := 0; l < k; l++ {
					s += ac[l] * bc[l]
				}
				cc[i] += alpha * s
			}
		}
	case !ta && tb:
		// C[:,j] += alpha*B[j,l] * A[:,l].
		for j := 0; j < n; j++ {
			cc := c[j*ldc : j*ldc+m]
			for l := 0; l < k; l++ {
				t := alpha * b[j+l*ldb]
				if t == 0 {
					continue
				}
				ac := a[l*lda : l*lda+m]
				for i := range cc {
					cc[i] += t * ac[i]
				}
			}
		}
	default: // ta && tb
		for j := 0; j < n; j++ {
			cc := c[j*ldc : j*ldc+m]
			for i := 0; i < m; i++ {
				ac := a[i*lda : i*lda+k]
				var s float64
				for l := 0; l < k; l++ {
					s += ac[l] * b[j+l*ldb]
				}
				cc[i] += alpha * s
			}
		}
	}
}

// DefaultKernel is the kernel used by Dgemm when none is specified
// explicitly. The blocked kernel is the best general choice on a cache-based
// CPU, matching the paper's use of the vendor-tuned DGEMM as the baseline.
var DefaultKernel Kernel = &BlockedKernel{}

// kernels registry for name-based selection (used by cmd tools and benches).
var kernels = map[string]Kernel{
	"naive":   NaiveKernel{},
	"vector":  VectorKernel{},
	"blocked": &BlockedKernel{},
}

// kernelOrder is the report order; registered kernels are prepended so the
// fastest (most recently contributed) kernel leads reports.
var kernelOrder = []string{"blocked", "vector", "naive"}

// RegisterKernel adds a kernel to the name registry (internal/kernel
// registers its packed kernel here at init, keeping the dependency arrow
// pointing from the kernel package to blas). Registration must happen
// during package initialization: the registry is read without locking
// afterwards. Re-registering a name replaces it without changing the
// report order.
func RegisterKernel(k Kernel) {
	name := k.Name()
	if _, exists := kernels[name]; !exists {
		kernelOrder = append([]string{name}, kernelOrder...)
	}
	kernels[name] = k
}

// KernelByName returns a registered kernel, or nil if the name is unknown.
// Known names: "packed" (once internal/kernel is linked), "naive",
// "vector", "blocked".
func KernelByName(name string) Kernel {
	return kernels[name]
}

// KernelNames lists the registered kernel names in report order.
func KernelNames() []string {
	out := make([]string, len(kernelOrder))
	copy(out, kernelOrder)
	return out
}
