package blas

import (
	"math/rand"
	"testing"
)

// refGemm is a straightforward reference for C = alpha*op(A)*op(B) + beta*C.
func refGemm(transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) []float64 {
	out := append([]float64(nil), c...)
	at := func(i, l int) float64 {
		if transA.IsTrans() {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	bt := func(l, j int) float64 {
		if transB.IsTrans() {
			return b[j+l*ldb]
		}
		return b[l+j*ldb]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			out[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
	return out
}

func allTrans() []Transpose { return []Transpose{NoTrans, Trans} }

func TestDgemmAllKernelsAllTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, kname := range KernelNames() {
		kern := KernelByName(kname)
		if kern == nil {
			t.Fatalf("kernel %q missing", kname)
		}
		for trial := 0; trial < 60; trial++ {
			m, n, k := rng.Intn(14)+1, rng.Intn(14)+1, rng.Intn(14)+1
			for _, ta := range allTrans() {
				for _, tb := range allTrans() {
					rowsA, colsA := m, k
					if ta.IsTrans() {
						rowsA, colsA = k, m
					}
					rowsB, colsB := k, n
					if tb.IsTrans() {
						rowsB, colsB = n, k
					}
					lda := rowsA + rng.Intn(3)
					ldb := rowsB + rng.Intn(3)
					ldc := m + rng.Intn(3)
					a := randMat(rng, rowsA, colsA, lda)
					b := randMat(rng, rowsB, colsB, ldb)
					c := randMat(rng, m, n, ldc)
					alpha := 2*rng.Float64() - 1
					beta := 2*rng.Float64() - 1
					switch trial % 4 {
					case 0:
						beta = 0
					case 1:
						alpha, beta = 1, 0
					}
					want := refGemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
					DgemmKernel(kern, ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
					for j := 0; j < n; j++ {
						for i := 0; i < m; i++ {
							if !almostEq(c[i+j*ldc], want[i+j*ldc], 1e-12) {
								t.Fatalf("%s ta=%c tb=%c m=%d n=%d k=%d: C(%d,%d)=%v want %v",
									kname, ta, tb, m, n, k, i, j, c[i+j*ldc], want[i+j*ldc])
							}
						}
					}
					// Sentinels beyond row m untouched.
					for j := 0; j < n; j++ {
						for i := m; i < ldc; i++ {
							if c[i+j*ldc] != 999 {
								t.Fatalf("%s wrote outside C", kname)
							}
						}
					}
				}
			}
		}
	}
}

func TestDgemmBlockedLargeAgainstNaive(t *testing.T) {
	// Exercise the packing edges: sizes straddling the MC/KC/NC block
	// boundaries and the MR/NR micro-tile remainders.
	rng := rand.New(rand.NewSource(32))
	kern := &BlockedKernel{MC: 8, KC: 8, NC: 8} // tiny blocks → many edges
	for _, dims := range [][3]int{{9, 9, 9}, {17, 5, 13}, {8, 8, 8}, {1, 20, 1}, {23, 1, 7}, {16, 16, 17}} {
		m, n, k := dims[0], dims[1], dims[2]
		for _, ta := range allTrans() {
			for _, tb := range allTrans() {
				rowsA, colsA := m, k
				if ta.IsTrans() {
					rowsA, colsA = k, m
				}
				rowsB, colsB := k, n
				if tb.IsTrans() {
					rowsB, colsB = n, k
				}
				a := randMat(rng, rowsA, colsA, rowsA)
				b := randMat(rng, rowsB, colsB, rowsB)
				c := randMat(rng, m, n, m)
				want := refGemm(ta, tb, m, n, k, 1.5, a, rowsA, b, rowsB, 0.5, c, m)
				DgemmKernel(kern, ta, tb, m, n, k, 1.5, a, rowsA, b, rowsB, 0.5, c, m)
				for i := range c {
					if !almostEq(c[i], want[i], 1e-12) {
						t.Fatalf("blocked small-block dims=%v ta=%c tb=%c mismatch", dims, ta, tb)
					}
				}
			}
		}
	}
}

func TestDgemmDegenerate(t *testing.T) {
	c := []float64{1, 2, 3, 4}
	// k == 0: C ← beta*C. (lda must still be ≥ m, as in the reference BLAS.)
	Dgemm(NoTrans, NoTrans, 2, 2, 0, 5, nil, 2, nil, 1, 2, c, 2)
	for i, want := range []float64{2, 4, 6, 8} {
		if c[i] != want {
			t.Fatalf("k=0: %v", c)
		}
	}
	// alpha == 0: same.
	Dgemm(NoTrans, NoTrans, 2, 2, 3, 0, make([]float64, 6), 2, make([]float64, 6), 3, 0.5, c, 2)
	for i, want := range []float64{1, 2, 3, 4} {
		if c[i] != want {
			t.Fatalf("alpha=0: %v", c)
		}
	}
	// m == 0 / n == 0: no-ops that must not touch memory (leading dimensions
	// are still validated, as in the reference BLAS).
	Dgemm(NoTrans, NoTrans, 0, 2, 2, 1, nil, 1, make([]float64, 4), 2, 0, nil, 1)
	Dgemm(NoTrans, NoTrans, 2, 0, 2, 1, make([]float64, 4), 2, nil, 2, 0, make([]float64, 4), 2)
}

func TestDgemmPanics(t *testing.T) {
	a := make([]float64, 4)
	for name, f := range map[string]func(){
		"bad transA": func() { Dgemm('Q', NoTrans, 1, 1, 1, 1, a, 1, a, 1, 0, a, 1) },
		"m<0":        func() { Dgemm(NoTrans, NoTrans, -1, 1, 1, 1, a, 1, a, 1, 0, a, 1) },
		"lda small":  func() { Dgemm(NoTrans, NoTrans, 3, 1, 1, 1, a, 2, a, 1, 0, a, 3) },
		"a short":    func() { Dgemm(NoTrans, NoTrans, 2, 2, 2, 1, a[:3], 2, a, 2, 0, a, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDsymmAgainstDgemm(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		m, n := rng.Intn(8)+1, rng.Intn(8)+1
		for _, side := range []Side{Left, Right} {
			na := n
			if side == Left {
				na = m
			}
			lda := na + rng.Intn(2)
			full := make([]float64, lda*na)
			for j := 0; j < na; j++ {
				for i := 0; i <= j; i++ {
					v := 2*rng.Float64() - 1
					full[i+j*lda] = v
					full[j+i*lda] = v
				}
			}
			b := randMat(rng, m, n, m)
			c := randMat(rng, m, n, m)
			alpha, beta := 1.25, -0.5
			var want []float64
			if side == Left {
				want = refGemm(NoTrans, NoTrans, m, n, m, alpha, full, lda, b, m, beta, c, m)
			} else {
				want = refGemmRight(m, n, alpha, b, m, full, lda, beta, c, m)
			}
			for _, uplo := range []Uplo{Upper, Lower} {
				cc := append([]float64(nil), c...)
				Dsymm(side, uplo, m, n, alpha, full, lda, b, m, beta, cc, m)
				for i := range cc {
					if !almostEq(cc[i], want[i], 1e-12) {
						t.Fatalf("Dsymm side=%c uplo=%c mismatch", side, uplo)
					}
				}
			}
		}
	}
}

// refGemmRight computes C = alpha*B*A + beta*C where B is m×n, A is n×n.
func refGemmRight(m, n int, alpha float64, b []float64, ldb int, a []float64, lda int, beta float64, c []float64, ldc int) []float64 {
	out := append([]float64(nil), c...)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += b[i+l*ldb] * a[l+j*lda]
			}
			out[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
	return out
}

func TestDsyrkAgainstDgemm(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 40; trial++ {
		n, k := rng.Intn(8)+1, rng.Intn(8)+1
		for _, trans := range allTrans() {
			rowsA, colsA := n, k
			if trans.IsTrans() {
				rowsA, colsA = k, n
			}
			lda := rowsA + rng.Intn(2)
			a := randMat(rng, rowsA, colsA, lda)
			cFull := randMat(rng, n, n, n)
			// Symmetrize C so the triangles agree.
			for j := 0; j < n; j++ {
				for i := 0; i < j; i++ {
					cFull[j+i*n] = cFull[i+j*n]
				}
			}
			alpha, beta := 0.75, 1.5
			tb := Trans
			if trans.IsTrans() {
				tb = NoTrans
			}
			want := refGemm(trans, tb, n, n, k, alpha, a, lda, a, lda, beta, cFull, n)
			for _, uplo := range []Uplo{Upper, Lower} {
				cc := append([]float64(nil), cFull...)
				Dsyrk(uplo, trans, n, k, alpha, a, lda, beta, cc, n)
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						inTri := i == j || ((i < j) == (uplo == Upper))
						if inTri {
							if !almostEq(cc[i+j*n], want[i+j*n], 1e-12) {
								t.Fatalf("Dsyrk uplo=%c trans=%c mismatch", uplo, trans)
							}
						} else if cc[i+j*n] != cFull[i+j*n] {
							t.Fatalf("Dsyrk touched opposite triangle")
						}
					}
				}
			}
		}
	}
}

func TestDtrmmDtrsmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 30; trial++ {
		m, n := rng.Intn(6)+1, rng.Intn(6)+1
		for _, side := range []Side{Left, Right} {
			na := n
			if side == Left {
				na = m
			}
			lda := na + 1
			a := randMat(rng, na, na, lda)
			for i := 0; i < na; i++ {
				a[i+i*lda] = 2 + rng.Float64()
			}
			for _, uplo := range []Uplo{Upper, Lower} {
				for _, trans := range allTrans() {
					for _, diag := range []Diag{NonUnit, Unit} {
						b := randMat(rng, m, n, m)
						orig := append([]float64(nil), b...)
						Dtrmm(side, uplo, trans, diag, m, n, 2, a, lda, b, m)
						Dtrsm(side, uplo, trans, diag, m, n, 0.5, a, lda, b, m)
						for i := range b {
							if !almostEq(b[i], orig[i], 1e-9) {
								t.Fatalf("trmm/trsm roundtrip side=%c uplo=%c trans=%c diag=%c", side, uplo, trans, diag)
							}
						}
					}
				}
			}
		}
	}
}

func TestDtrmmLeftAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	m, n := 5, 4
	lda := m
	a := randMat(rng, m, m, lda)
	for _, uplo := range []Uplo{Upper, Lower} {
		full := make([]float64, m*m)
		for j := 0; j < m; j++ {
			for i := 0; i < m; i++ {
				if i == j || (i < j) == (uplo == Upper) {
					full[i+j*m] = a[i+j*lda]
				}
			}
		}
		b := randMat(rng, m, n, m)
		want := refGemm(NoTrans, NoTrans, m, n, m, 1, full, m, b, m, 0, make([]float64, m*n), m)
		Dtrmm(Left, uplo, NoTrans, NonUnit, m, n, 1, a, lda, b, m)
		for i := range b {
			if !almostEq(b[i], want[i], 1e-12) {
				t.Fatalf("Dtrmm dense check uplo=%c", uplo)
			}
		}
	}
}
