package blas

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests over the algebraic identities the BLAS must satisfy,
// driven by testing/quick for shape/seed generation.

type gemmShape struct {
	M, N, K uint8
	Seed    int64
}

func (s gemmShape) dims() (m, n, k int) {
	return int(s.M%16) + 1, int(s.N%16) + 1, int(s.K%16) + 1
}

// kernelsAgree: all registered kernels compute the same product.
func TestQuickKernelsAgree(t *testing.T) {
	f := func(s gemmShape) bool {
		m, n, k := s.dims()
		rng := rand.New(rand.NewSource(s.Seed))
		a := randMat(rng, m, k, m)
		b := randMat(rng, k, n, k)
		c0 := randMat(rng, m, n, m)
		var results [][]float64
		for _, name := range KernelNames() {
			c := append([]float64(nil), c0...)
			DgemmKernel(KernelByName(name), NoTrans, NoTrans, m, n, k, 1.3, a, m, b, k, 0.7, c, m)
			results = append(results, c)
		}
		for i := 1; i < len(results); i++ {
			for j := range results[0] {
				if !almostEq(results[0][j], results[i][j], 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Linearity: A(x+y) = Ax + Ay for Dgemv.
func TestQuickGemvLinearity(t *testing.T) {
	f := func(s gemmShape) bool {
		m, n, _ := s.dims()
		rng := rand.New(rand.NewSource(s.Seed))
		a := randMat(rng, m, n, m)
		x := randVec(rng, n)
		y := randVec(rng, n)
		xy := make([]float64, n)
		for i := range xy {
			xy[i] = x[i] + y[i]
		}
		r1 := make([]float64, m)
		r2 := make([]float64, m)
		r3 := make([]float64, m)
		Dgemv(NoTrans, m, n, 1, a, m, x, 1, 0, r1, 1)
		Dgemv(NoTrans, m, n, 1, a, m, y, 1, 0, r2, 1)
		Dgemv(NoTrans, m, n, 1, a, m, xy, 1, 0, r3, 1)
		for i := range r3 {
			if !almostEq(r3[i], r1[i]+r2[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Transpose identity: (AB)ᵀ = BᵀAᵀ via Dgemm.
func TestQuickGemmTransposeIdentity(t *testing.T) {
	f := func(s gemmShape) bool {
		m, n, k := s.dims()
		rng := rand.New(rand.NewSource(s.Seed))
		a := randMat(rng, m, k, m)
		b := randMat(rng, k, n, k)
		ab := make([]float64, m*n)
		Dgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, ab, m)
		// Compute Cᵀ = BᵀAᵀ directly: Cᵀ is n×m.
		ct := make([]float64, n*m)
		Dgemm(Trans, Trans, n, m, k, 1, b, k, a, m, 0, ct, n)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if !almostEq(ab[i+j*m], ct[j+i*n], 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Scaling: Dgemm with alpha scales linearly.
func TestQuickGemmAlphaLinearity(t *testing.T) {
	f := func(s gemmShape, alphaRaw int8) bool {
		m, n, k := s.dims()
		alpha := float64(alphaRaw) / 16
		rng := rand.New(rand.NewSource(s.Seed))
		a := randMat(rng, m, k, m)
		b := randMat(rng, k, n, k)
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		Dgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c1, m)
		Dgemm(NoTrans, NoTrans, m, n, k, alpha, a, m, b, k, 0, c2, m)
		for i := range c1 {
			if !almostEq(alpha*c1[i], c2[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Dger is Dgemm with k=1.
func TestQuickGerEqualsRankOneGemm(t *testing.T) {
	f := func(s gemmShape) bool {
		m, n, _ := s.dims()
		rng := rand.New(rand.NewSource(s.Seed))
		x := randVec(rng, m)
		y := randVec(rng, n)
		c1 := randMat(rng, m, n, m)
		c2 := append([]float64(nil), c1...)
		Dger(m, n, 1.7, x, 1, y, 1, c1, m)
		Dgemm(NoTrans, NoTrans, m, n, 1, 1.7, x, m, y, 1, 1, c2, m)
		for i := range c1 {
			if !almostEq(c1[i], c2[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Dsyrk equals the symmetric part of the corresponding Dgemm.
func TestQuickSyrkEqualsGemm(t *testing.T) {
	f := func(s gemmShape) bool {
		n, _, k := s.dims()
		rng := rand.New(rand.NewSource(s.Seed))
		a := randMat(rng, n, k, n)
		cg := make([]float64, n*n)
		Dgemm(NoTrans, Trans, n, n, k, 1, a, n, a, n, 0, cg, n)
		cs := make([]float64, n*n)
		Dsyrk(Lower, NoTrans, n, k, 1, a, n, 0, cs, n)
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				if !almostEq(cs[i+j*n], cg[i+j*n], 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
