package blas

// Level 3 BLAS. Dgemm is the routine DGEFMM replaces; the remaining routines
// support the eigensolver substrate (QR updates, symmetric algebra).

// Dgemm computes C ← alpha*op(A)*op(B) + beta*C using DefaultKernel.
// op(A) is m×k, op(B) is k×n, C is m×n; all column-major with leading
// dimensions lda, ldb, ldc.
func Dgemm(transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) {
	DgemmKernel(DefaultKernel, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DgemmKernel is Dgemm with an explicit kernel choice. A nil kernel selects
// DefaultKernel. Note that *BlockedKernel keeps internal packing buffers, so
// a single kernel value must not be used from multiple goroutines at once.
func DgemmKernel(kern Kernel, transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) {
	if !transA.valid() {
		xerbla("DGEMM", 1, "bad transA")
	}
	if !transB.valid() {
		xerbla("DGEMM", 2, "bad transB")
	}
	if m < 0 {
		xerbla("DGEMM", 3, "m < 0")
	}
	if n < 0 {
		xerbla("DGEMM", 4, "n < 0")
	}
	if k < 0 {
		xerbla("DGEMM", 5, "k < 0")
	}
	rowsA, colsA := m, k
	if transA.IsTrans() {
		rowsA, colsA = k, m
	}
	rowsB, colsB := k, n
	if transB.IsTrans() {
		rowsB, colsB = n, k
	}
	checkLD("DGEMM", 8, "a", lda, rowsA)
	checkLD("DGEMM", 10, "b", ldb, rowsB)
	checkLD("DGEMM", 13, "c", ldc, m)
	if m == 0 || n == 0 {
		return
	}
	checkMatSize("DGEMM", "a", a, rowsA, colsA, lda)
	checkMatSize("DGEMM", "b", b, rowsB, colsB, ldb)
	checkMatSize("DGEMM", "c", c, m, n, ldc)

	// C ← beta*C.
	if beta != 1 {
		for j := 0; j < n; j++ {
			col := c[j*ldc : j*ldc+m]
			if beta == 0 {
				for i := range col {
					col[i] = 0
				}
			} else {
				for i := range col {
					col[i] *= beta
				}
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	if kern == nil {
		kern = DefaultKernel
	}
	kern.MulAdd(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
}

// Dsymm computes C ← alpha*A*B + beta*C (side Left) or
// C ← alpha*B*A + beta*C (side Right), where A is symmetric with only the
// uplo triangle referenced; C is m×n.
func Dsymm(side Side, uplo Uplo, m, n int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) {
	if !side.valid() {
		xerbla("DSYMM", 1, "bad side")
	}
	if !uplo.valid() {
		xerbla("DSYMM", 2, "bad uplo")
	}
	if m < 0 {
		xerbla("DSYMM", 3, "m < 0")
	}
	if n < 0 {
		xerbla("DSYMM", 4, "n < 0")
	}
	na := n
	if side.isLeft() {
		na = m
	}
	checkLD("DSYMM", 7, "a", lda, na)
	checkLD("DSYMM", 9, "b", ldb, m)
	checkLD("DSYMM", 12, "c", ldc, m)
	if m == 0 || n == 0 {
		return
	}
	checkMatSize("DSYMM", "a", a, na, na, lda)
	checkMatSize("DSYMM", "b", b, m, n, ldb)
	checkMatSize("DSYMM", "c", c, m, n, ldc)

	upper := uplo.isUpper()
	sym := func(i, j int) float64 {
		if i == j || (i < j) == upper {
			return a[i+j*lda]
		}
		return a[j+i*lda]
	}
	for j := 0; j < n; j++ {
		col := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := range col {
				col[i] *= beta
			}
		}
		if alpha == 0 {
			continue
		}
		if side.isLeft() {
			for l := 0; l < m; l++ {
				t := alpha * b[l+j*ldb]
				if t == 0 {
					continue
				}
				for i := 0; i < m; i++ {
					col[i] += t * sym(i, l)
				}
			}
		} else {
			for l := 0; l < n; l++ {
				t := alpha * sym(l, j)
				if t == 0 {
					continue
				}
				bc := b[l*ldb : l*ldb+m]
				for i := range col {
					col[i] += t * bc[i]
				}
			}
		}
	}
}

// Dsyrk computes the symmetric rank-k update
// C ← alpha*op(A)*op(A)ᵀ + beta*C where op(A) is n×k; only the uplo triangle
// of C is referenced and updated.
func Dsyrk(uplo Uplo, trans Transpose, n, k int, alpha float64,
	a []float64, lda int, beta float64, c []float64, ldc int) {
	if !uplo.valid() {
		xerbla("DSYRK", 1, "bad uplo")
	}
	if !trans.valid() {
		xerbla("DSYRK", 2, "bad trans")
	}
	if n < 0 {
		xerbla("DSYRK", 3, "n < 0")
	}
	if k < 0 {
		xerbla("DSYRK", 4, "k < 0")
	}
	rowsA, colsA := n, k
	if trans.IsTrans() {
		rowsA, colsA = k, n
	}
	checkLD("DSYRK", 7, "a", lda, rowsA)
	checkLD("DSYRK", 10, "c", ldc, n)
	if n == 0 {
		return
	}
	checkMatSize("DSYRK", "a", a, rowsA, colsA, lda)
	checkMatSize("DSYRK", "c", c, n, n, ldc)

	upper := uplo.isUpper()
	for j := 0; j < n; j++ {
		lo, hi := 0, j+1
		if !upper {
			lo, hi = j, n
		}
		col := c[j*ldc:]
		if beta == 0 {
			for i := lo; i < hi; i++ {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := lo; i < hi; i++ {
				col[i] *= beta
			}
		}
		if alpha == 0 || k == 0 {
			continue
		}
		if !trans.IsTrans() {
			// C(i,j) += alpha * sum_l A(i,l)*A(j,l)
			for l := 0; l < k; l++ {
				t := alpha * a[j+l*lda]
				if t == 0 {
					continue
				}
				ac := a[l*lda:]
				for i := lo; i < hi; i++ {
					col[i] += t * ac[i]
				}
			}
		} else {
			// C(i,j) += alpha * dot(A(:,i), A(:,j))
			aj := a[j*lda : j*lda+k]
			for i := lo; i < hi; i++ {
				ai := a[i*lda : i*lda+k]
				var s float64
				for l := range aj {
					s += ai[l] * aj[l]
				}
				col[i] += alpha * s
			}
		}
	}
}

// Dtrmm computes B ← alpha*op(A)*B (side Left) or B ← alpha*B*op(A)
// (side Right) for triangular A; B is m×n and is overwritten.
func Dtrmm(side Side, uplo Uplo, transA Transpose, diag Diag, m, n int,
	alpha float64, a []float64, lda int, b []float64, ldb int) {
	if !side.valid() {
		xerbla("DTRMM", 1, "bad side")
	}
	if !uplo.valid() {
		xerbla("DTRMM", 2, "bad uplo")
	}
	if !transA.valid() {
		xerbla("DTRMM", 3, "bad transA")
	}
	if !diag.valid() {
		xerbla("DTRMM", 4, "bad diag")
	}
	if m < 0 {
		xerbla("DTRMM", 5, "m < 0")
	}
	if n < 0 {
		xerbla("DTRMM", 6, "n < 0")
	}
	na := n
	if side.isLeft() {
		na = m
	}
	checkLD("DTRMM", 9, "a", lda, na)
	checkLD("DTRMM", 11, "b", ldb, m)
	if m == 0 || n == 0 {
		return
	}
	checkMatSize("DTRMM", "a", a, na, na, lda)
	checkMatSize("DTRMM", "b", b, m, n, ldb)

	if alpha == 0 {
		for j := 0; j < n; j++ {
			col := b[j*ldb : j*ldb+m]
			for i := range col {
				col[i] = 0
			}
		}
		return
	}
	if side.isLeft() {
		// Column by column: B(:,j) ← alpha*op(A)*B(:,j) via Dtrmv.
		for j := 0; j < n; j++ {
			Dtrmv(uplo, transA, diag, m, a, lda, b[j*ldb:j*ldb+m], 1)
			if alpha != 1 {
				Dscal(m, alpha, b[j*ldb:j*ldb+m], 1)
			}
		}
		return
	}
	// Right side: row by row, B(i,:) ← alpha*B(i,:)*op(A), i.e.
	// B(i,:)ᵀ ← alpha*op(A)ᵀ*B(i,:)ᵀ.
	flip := NoTrans
	if !transA.IsTrans() {
		flip = Trans
	}
	row := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		Dtrmv(uplo, flip, diag, n, a, lda, row, 1)
		for j := 0; j < n; j++ {
			b[i+j*ldb] = alpha * row[j]
		}
	}
}

// Dtrsm solves op(A)*X = alpha*B (side Left) or X*op(A) = alpha*B
// (side Right) for X, overwriting B with X; A is triangular, B is m×n.
func Dtrsm(side Side, uplo Uplo, transA Transpose, diag Diag, m, n int,
	alpha float64, a []float64, lda int, b []float64, ldb int) {
	if !side.valid() {
		xerbla("DTRSM", 1, "bad side")
	}
	if !uplo.valid() {
		xerbla("DTRSM", 2, "bad uplo")
	}
	if !transA.valid() {
		xerbla("DTRSM", 3, "bad transA")
	}
	if !diag.valid() {
		xerbla("DTRSM", 4, "bad diag")
	}
	if m < 0 {
		xerbla("DTRSM", 5, "m < 0")
	}
	if n < 0 {
		xerbla("DTRSM", 6, "n < 0")
	}
	na := n
	if side.isLeft() {
		na = m
	}
	checkLD("DTRSM", 9, "a", lda, na)
	checkLD("DTRSM", 11, "b", ldb, m)
	if m == 0 || n == 0 {
		return
	}
	checkMatSize("DTRSM", "a", a, na, na, lda)
	checkMatSize("DTRSM", "b", b, m, n, ldb)

	if alpha != 1 {
		for j := 0; j < n; j++ {
			Dscal(m, alpha, b[j*ldb:j*ldb+m], 1)
		}
	}
	if side.isLeft() {
		for j := 0; j < n; j++ {
			Dtrsv(uplo, transA, diag, m, a, lda, b[j*ldb:j*ldb+m], 1)
		}
		return
	}
	// Right side: X*op(A) = B ⇒ op(A)ᵀ*Xᵀ = Bᵀ, solve row by row.
	flip := NoTrans
	if !transA.IsTrans() {
		flip = Trans
	}
	row := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			row[j] = b[i+j*ldb]
		}
		Dtrsv(uplo, flip, diag, n, a, lda, row, 1)
		for j := 0; j < n; j++ {
			b[i+j*ldb] = row[j]
		}
	}
}
