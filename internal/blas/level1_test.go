package blas

import (
	"math"
	"math/rand"
	"testing"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDdot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Ddot(3, x, 1, y, 1); got != 32 {
		t.Fatalf("Ddot = %v, want 32", got)
	}
	if got := Ddot(0, nil, 1, nil, 1); got != 0 {
		t.Fatalf("empty dot = %v", got)
	}
}

func TestDdotStrided(t *testing.T) {
	x := []float64{1, 99, 2, 99, 3}
	y := []float64{4, 0, 5, 0, 6}
	if got := Ddot(3, x, 2, y, 2); got != 32 {
		t.Fatalf("strided Ddot = %v, want 32", got)
	}
}

func TestDdotNegativeStride(t *testing.T) {
	// FORTRAN convention: negative inc walks backwards from the far end.
	x := []float64{3, 2, 1} // traversed as 1, 2, 3
	y := []float64{4, 5, 6}
	if got := Ddot(3, x, -1, y, 1); got != 1*4+2*5+3*6 {
		t.Fatalf("neg stride Ddot = %v", got)
	}
}

func TestDaxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Daxpy(3, 2, x, 1, y, 1)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Daxpy: %v", y)
		}
	}
	// alpha = 0 is a no-op
	Daxpy(3, 0, x, 1, y, 1)
	for i := range y {
		if y[i] != want[i] {
			t.Fatal("alpha=0 should not modify y")
		}
	}
}

func TestDaxpyStrided(t *testing.T) {
	x := []float64{1, 0, 2}
	y := []float64{1, 1, 1, 1, 1}
	Daxpy(2, 3, x, 2, y, 3) // y[0] += 3*1, y[3] += 3*2
	if y[0] != 4 || y[3] != 7 || y[1] != 1 || y[2] != 1 || y[4] != 1 {
		t.Fatalf("strided Daxpy: %v", y)
	}
}

func TestDscal(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	Dscal(2, 10, x, 2)
	if x[0] != 10 || x[1] != 2 || x[2] != 30 || x[3] != 4 {
		t.Fatalf("Dscal strided: %v", x)
	}
	Dscal(4, 0, x, 1)
	for _, v := range x {
		if v != 0 {
			t.Fatal("Dscal 0 should zero")
		}
	}
}

func TestDcopyDswap(t *testing.T) {
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	Dcopy(3, x, 1, y, 1)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("Dcopy")
		}
	}
	a := []float64{1, 2}
	b := []float64{3, 4}
	Dswap(2, a, 1, b, 1)
	if a[0] != 3 || a[1] != 4 || b[0] != 1 || b[1] != 2 {
		t.Fatal("Dswap")
	}
}

func TestDnrm2(t *testing.T) {
	if got := Dnrm2(2, []float64{3, 4}, 1); got != 5 {
		t.Fatalf("Dnrm2 = %v", got)
	}
	// Overflow guard: would overflow with naive sum of squares.
	if got := Dnrm2(2, []float64{1e200, 1e200}, 1); math.IsInf(got, 0) {
		t.Fatal("Dnrm2 overflowed")
	}
	// Underflow guard.
	got := Dnrm2(2, []float64{1e-200, 1e-200}, 1)
	want := 1e-200 * math.Sqrt2
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("Dnrm2 underflow: %v", got)
	}
	if Dnrm2(0, nil, 1) != 0 {
		t.Fatal("empty norm")
	}
}

func TestDasum(t *testing.T) {
	if got := Dasum(3, []float64{1, -2, 3}, 1); got != 6 {
		t.Fatalf("Dasum = %v", got)
	}
}

func TestIdamax(t *testing.T) {
	if got := Idamax(4, []float64{1, -5, 3, 5}, 1); got != 1 {
		t.Fatalf("Idamax = %d, want 1 (first max)", got)
	}
	if got := Idamax(0, nil, 1); got != -1 {
		t.Fatal("empty Idamax should be -1")
	}
}

func TestLevel1Panics(t *testing.T) {
	for name, f := range map[string]func(){
		"Ddot n<0":       func() { Ddot(-1, nil, 1, nil, 1) },
		"Ddot short x":   func() { Ddot(3, []float64{1}, 1, []float64{1, 2, 3}, 1) },
		"Daxpy short y":  func() { Daxpy(3, 1, []float64{1, 2, 3}, 1, []float64{1}, 1) },
		"Dscal inc<=0":   func() { Dscal(2, 1.5, []float64{1, 2}, 0) },
		"Dnrm2 inc<=0":   func() { Dnrm2(2, []float64{1, 2}, -1) },
		"Idamax inc<=0":  func() { Idamax(2, []float64{1, 2}, 0) },
		"Dcopy zero inc": func() { Dcopy(2, []float64{1, 2}, 0, []float64{1, 2}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDaxpyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(64)
		x := randVec(rng, n)
		y := randVec(rng, n)
		alpha := 2*rng.Float64() - 1
		want := make([]float64, n)
		for i := range want {
			want[i] = y[i] + alpha*x[i]
		}
		Daxpy(n, alpha, x, 1, y, 1)
		for i := range y {
			if !almostEq(y[i], want[i], 1e-15) {
				t.Fatalf("trial %d: mismatch", trial)
			}
		}
	}
}
