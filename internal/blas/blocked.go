package blas

// BlockedKernel is a cache-blocked, packing DGEMM in the style of tuned
// library kernels (ESSL, GotoBLAS): the operands are copied into contiguous
// zero-padded panels sized to the cache hierarchy, and a register-tiled
// micro-kernel runs over the packed data. It models the RS/6000's vendor
// DGEMM: a high absolute flop rate that makes the O(n²) Strassen overheads
// relatively expensive and pushes the empirical cutoff up (Table 2).
//
// Packing also makes the four transpose cases uniform: the packers read
// through op(A)/op(B), and a single micro-kernel serves all cases.
type BlockedKernel struct {
	// MC×KC is the packed A panel (targets L2); KC×NC is the packed B panel
	// (targets L3). Zero values select the defaults.
	MC, KC, NC int

	apack []float64
	bpack []float64
}

// Micro-tile dimensions of the register kernel.
const (
	mr = 4
	nr = 4
)

const (
	defaultMC = 128
	defaultKC = 256
	defaultNC = 1024
)

// Name implements Kernel.
func (k *BlockedKernel) Name() string { return "blocked" }

func (k *BlockedKernel) params() (mc, kc, nc int) {
	mc, kc, nc = k.MC, k.KC, k.NC
	if mc <= 0 {
		mc = defaultMC
	}
	if kc <= 0 {
		kc = defaultKC
	}
	if nc <= 0 {
		nc = defaultNC
	}
	// Round the panel heights up to whole micro-tiles.
	mc = ((mc + mr - 1) / mr) * mr
	nc = ((nc + nr - 1) / nr) * nr
	return mc, kc, nc
}

// MulAdd implements Kernel.
func (k *BlockedKernel) MulAdd(transA, transB Transpose, m, n, kk int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	mc, kc, nc := k.params()
	if cap(k.apack) < mc*kc {
		k.apack = make([]float64, mc*kc)
	}
	if cap(k.bpack) < kc*nc {
		k.bpack = make([]float64, kc*nc)
	}
	apack := k.apack[:mc*kc]
	bpack := k.bpack[:kc*nc]
	ta, tb := transA.IsTrans(), transB.IsTrans()

	for jc := 0; jc < n; jc += nc {
		nb := minInt(nc, n-jc)
		for pc := 0; pc < kk; pc += kc {
			kb := minInt(kc, kk-pc)
			packB(bpack, b, ldb, tb, pc, jc, kb, nb)
			for ic := 0; ic < m; ic += mc {
				mb := minInt(mc, m-ic)
				packA(apack, a, lda, ta, ic, pc, mb, kb)
				macroKernel(apack, bpack, c, ldc, ic, jc, mb, nb, kb, alpha)
			}
		}
	}
}

// packA copies the mb×kb block of op(A) with top-left (ic, pc) into dst as
// MR-row panels, zero-padding the ragged final panel. Element (i, l) of the
// block lands at dst[(i/mr)*(mr*kb) + l*mr + i%mr].
func packA(dst []float64, a []float64, lda int, ta bool, ic, pc, mb, kb int) {
	for ip := 0; ip < mb; ip += mr {
		rows := minInt(mr, mb-ip)
		base := (ip / mr) * (mr * kb)
		if !ta {
			for l := 0; l < kb; l++ {
				src := a[(pc+l)*lda+ic+ip:]
				d := dst[base+l*mr : base+l*mr+mr]
				for r := 0; r < rows; r++ {
					d[r] = src[r]
				}
				for r := rows; r < mr; r++ {
					d[r] = 0
				}
			}
		} else {
			// op(A)(i, l) = A(l, i) stored at a[(pc+l) + (ic+i)*lda].
			for l := 0; l < kb; l++ {
				d := dst[base+l*mr : base+l*mr+mr]
				for r := 0; r < rows; r++ {
					d[r] = a[pc+l+(ic+ip+r)*lda]
				}
				for r := rows; r < mr; r++ {
					d[r] = 0
				}
			}
		}
	}
}

// packB copies the kb×nb block of op(B) with top-left (pc, jc) into dst as
// NR-column panels, zero-padding the ragged final panel. Element (l, j) of
// the block lands at dst[(j/nr)*(nr*kb) + l*nr + j%nr].
func packB(dst []float64, b []float64, ldb int, tb bool, pc, jc, kb, nb int) {
	for jp := 0; jp < nb; jp += nr {
		cols := minInt(nr, nb-jp)
		base := (jp / nr) * (nr * kb)
		if !tb {
			for l := 0; l < kb; l++ {
				d := dst[base+l*nr : base+l*nr+nr]
				for s := 0; s < cols; s++ {
					d[s] = b[pc+l+(jc+jp+s)*ldb]
				}
				for s := cols; s < nr; s++ {
					d[s] = 0
				}
			}
		} else {
			// op(B)(l, j) = B(j, l) stored at b[(jc+j) + (pc+l)*ldb].
			for l := 0; l < kb; l++ {
				src := b[(pc+l)*ldb+jc+jp:]
				d := dst[base+l*nr : base+l*nr+nr]
				for s := 0; s < cols; s++ {
					d[s] = src[s]
				}
				for s := cols; s < nr; s++ {
					d[s] = 0
				}
			}
		}
	}
}

// macroKernel sweeps the packed panels with the MR×NR micro-kernel and
// accumulates alpha times the product into C.
func macroKernel(apack, bpack []float64, c []float64, ldc int, ic, jc, mb, nb, kb int, alpha float64) {
	for jp := 0; jp < nb; jp += nr {
		cols := minInt(nr, nb-jp)
		bbase := (jp / nr) * (nr * kb)
		for ip := 0; ip < mb; ip += mr {
			rows := minInt(mr, mb-ip)
			abase := (ip / mr) * (mr * kb)
			microKernel(apack[abase:abase+mr*kb], bpack[bbase:bbase+nr*kb],
				c, ldc, ic+ip, jc+jp, rows, cols, kb, alpha)
		}
	}
}

// microKernel computes the MR×NR register tile: acc += ap(:,l) ⊗ bp(l,:) for
// l in [0, kb), then scatters alpha*acc into C (only the valid rows/cols of a
// ragged edge tile).
func microKernel(ap, bp []float64, c []float64, ldc int, ci, cj, rows, cols, kb int, alpha float64) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64

	for l := 0; l < kb; l++ {
		a0, a1, a2, a3 := ap[l*mr], ap[l*mr+1], ap[l*mr+2], ap[l*mr+3]
		b0, b1, b2, b3 := bp[l*nr], bp[l*nr+1], bp[l*nr+2], bp[l*nr+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}

	var acc [mr][nr]float64
	acc[0] = [nr]float64{c00, c01, c02, c03}
	acc[1] = [nr]float64{c10, c11, c12, c13}
	acc[2] = [nr]float64{c20, c21, c22, c23}
	acc[3] = [nr]float64{c30, c31, c32, c33}

	for s := 0; s < cols; s++ {
		col := c[(cj+s)*ldc+ci:]
		for r := 0; r < rows; r++ {
			col[r] += alpha * acc[r][s]
		}
	}
}
