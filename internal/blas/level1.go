package blas

import "math"

// Level 1 BLAS: vector-vector kernels. These back the Level 2/3 routines and
// the "vector machine" DGEMM kernel, and DGER/DGEMV's inner loops.

// Ddot returns sum_i x[i]*y[i] over n strided elements.
func Ddot(n int, x []float64, incX int, y []float64, incY int) float64 {
	if n < 0 {
		xerbla("DDOT", 1, "n < 0")
	}
	if n == 0 {
		return 0
	}
	checkVecSize("DDOT", "x", x, n, incX)
	checkVecSize("DDOT", "y", y, n, incY)
	if incX == 1 && incY == 1 {
		var s float64
		for i := 0; i < n; i++ {
			s += x[i] * y[i]
		}
		return s
	}
	ix, iy := startIdx(n, incX), startIdx(n, incY)
	var s float64
	for i := 0; i < n; i++ {
		s += x[ix] * y[iy]
		ix += incX
		iy += incY
	}
	return s
}

// Daxpy computes y ← alpha*x + y over n strided elements.
func Daxpy(n int, alpha float64, x []float64, incX int, y []float64, incY int) {
	if n < 0 {
		xerbla("DAXPY", 1, "n < 0")
	}
	if n == 0 || alpha == 0 {
		return
	}
	checkVecSize("DAXPY", "x", x, n, incX)
	checkVecSize("DAXPY", "y", y, n, incY)
	if incX == 1 && incY == 1 {
		x = x[:n]
		y = y[:n]
		for i := range x {
			y[i] += alpha * x[i]
		}
		return
	}
	ix, iy := startIdx(n, incX), startIdx(n, incY)
	for i := 0; i < n; i++ {
		y[iy] += alpha * x[ix]
		ix += incX
		iy += incY
	}
}

// Dscal computes x ← alpha*x over n strided elements.
func Dscal(n int, alpha float64, x []float64, incX int) {
	if n < 0 {
		xerbla("DSCAL", 1, "n < 0")
	}
	if n == 0 || alpha == 1 {
		return
	}
	if incX <= 0 {
		xerbla("DSCAL", 4, "incX <= 0")
	}
	checkVecSize("DSCAL", "x", x, n, incX)
	if incX == 1 {
		x = x[:n]
		for i := range x {
			x[i] *= alpha
		}
		return
	}
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+incX {
		x[ix] *= alpha
	}
}

// Dcopy copies x into y over n strided elements.
func Dcopy(n int, x []float64, incX int, y []float64, incY int) {
	if n < 0 {
		xerbla("DCOPY", 1, "n < 0")
	}
	if n == 0 {
		return
	}
	checkVecSize("DCOPY", "x", x, n, incX)
	checkVecSize("DCOPY", "y", y, n, incY)
	if incX == 1 && incY == 1 {
		copy(y[:n], x[:n])
		return
	}
	ix, iy := startIdx(n, incX), startIdx(n, incY)
	for i := 0; i < n; i++ {
		y[iy] = x[ix]
		ix += incX
		iy += incY
	}
}

// Dswap exchanges x and y over n strided elements.
func Dswap(n int, x []float64, incX int, y []float64, incY int) {
	if n < 0 {
		xerbla("DSWAP", 1, "n < 0")
	}
	if n == 0 {
		return
	}
	checkVecSize("DSWAP", "x", x, n, incX)
	checkVecSize("DSWAP", "y", y, n, incY)
	ix, iy := startIdx(n, incX), startIdx(n, incY)
	for i := 0; i < n; i++ {
		x[ix], y[iy] = y[iy], x[ix]
		ix += incX
		iy += incY
	}
}

// Dnrm2 returns the Euclidean norm of x, guarding against overflow and
// underflow by the standard scaled-sum-of-squares recurrence.
func Dnrm2(n int, x []float64, incX int) float64 {
	if n < 0 {
		xerbla("DNRM2", 1, "n < 0")
	}
	if n == 0 {
		return 0
	}
	if incX <= 0 {
		xerbla("DNRM2", 3, "incX <= 0")
	}
	checkVecSize("DNRM2", "x", x, n, incX)
	if n == 1 {
		return math.Abs(x[0])
	}
	scale, ssq := 0.0, 1.0
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+incX {
		v := x[ix]
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dasum returns sum_i |x[i]| over n strided elements.
func Dasum(n int, x []float64, incX int) float64 {
	if n < 0 {
		xerbla("DASUM", 1, "n < 0")
	}
	if n == 0 {
		return 0
	}
	if incX <= 0 {
		xerbla("DASUM", 3, "incX <= 0")
	}
	checkVecSize("DASUM", "x", x, n, incX)
	var s float64
	for i, ix := 0, 0; i < n; i, ix = i+1, ix+incX {
		s += math.Abs(x[ix])
	}
	return s
}

// Idamax returns the index (0-based) of the first element of maximum absolute
// value, or -1 when n == 0.
func Idamax(n int, x []float64, incX int) int {
	if n < 0 {
		xerbla("IDAMAX", 1, "n < 0")
	}
	if n == 0 {
		return -1
	}
	if incX <= 0 {
		xerbla("IDAMAX", 3, "incX <= 0")
	}
	checkVecSize("IDAMAX", "x", x, n, incX)
	best, bestVal := 0, math.Abs(x[0])
	for i, ix := 1, incX; i < n; i, ix = i+1, ix+incX {
		if a := math.Abs(x[ix]); a > bestVal {
			best, bestVal = i, a
		}
	}
	return best
}

// startIdx returns the FORTRAN-convention starting offset for a stride:
// negative increments walk the vector backwards from the far end.
func startIdx(n, inc int) int {
	if inc >= 0 {
		return 0
	}
	return -(n - 1) * inc
}
