package blas

import (
	"math/rand"
	"testing"
)

// randMat returns column-major data for an r×c matrix with leading
// dimension ld ≥ r (extra rows filled with sentinels to catch overwrites).
func randMat(rng *rand.Rand, r, c, ld int) []float64 {
	a := make([]float64, ld*c)
	for i := range a {
		a[i] = 999 // sentinel
	}
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			a[i+j*ld] = 2*rng.Float64() - 1
		}
	}
	return a
}

// refGemv computes y = alpha*op(A)*x + beta*y elementwise.
func refGemv(trans Transpose, m, n int, alpha float64, a []float64, lda int,
	x []float64, incX int, beta float64, y []float64, incY int) []float64 {
	lenY := m
	lenX := n
	if trans.IsTrans() {
		lenY, lenX = n, m
	}
	ix0, iy0 := startIdx(lenX, incX), startIdx(lenY, incY)
	out := append([]float64(nil), y...)
	for i := 0; i < lenY; i++ {
		var s float64
		for j := 0; j < lenX; j++ {
			var aij float64
			if !trans.IsTrans() {
				aij = a[i+j*lda]
			} else {
				aij = a[j+i*lda]
			}
			s += aij * x[ix0+j*incX]
		}
		out[iy0+i*incY] = alpha*s + beta*y[iy0+i*incY]
	}
	return out
}

func TestDgemvAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		m, n := rng.Intn(12)+1, rng.Intn(12)+1
		lda := m + rng.Intn(3)
		trans := NoTrans
		if rng.Intn(2) == 1 {
			trans = Trans
		}
		lenX, lenY := n, m
		if trans.IsTrans() {
			lenX, lenY = m, n
		}
		incX := 1 + rng.Intn(2)
		incY := 1 + rng.Intn(2)
		a := randMat(rng, m, n, lda)
		x := randVec(rng, 1+(lenX-1)*incX)
		y := randVec(rng, 1+(lenY-1)*incY)
		alpha := 2*rng.Float64() - 1
		beta := 2*rng.Float64() - 1
		if trial%5 == 0 {
			beta = 0
		}
		want := refGemv(trans, m, n, alpha, a, lda, x, incX, beta, y, incY)
		Dgemv(trans, m, n, alpha, a, lda, x, incX, beta, y, incY)
		for i := range y {
			if !almostEq(y[i], want[i], 1e-13) {
				t.Fatalf("trial %d (trans=%c): y[%d]=%v want %v", trial, trans, i, y[i], want[i])
			}
		}
	}
}

func TestDgemvBetaZeroOverwritesNaN(t *testing.T) {
	// beta == 0 must overwrite y even if it holds garbage/NaN.
	a := []float64{1, 2} // 2×1
	x := []float64{3}
	y := []float64{nan(), nan()}
	Dgemv(NoTrans, 2, 1, 1, a, 2, x, 1, 0, y, 1)
	if y[0] != 3 || y[1] != 6 {
		t.Fatalf("beta=0 with NaN y: %v", y)
	}
}

func nan() float64 { var z float64; return z / z }

func TestDgerAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		m, n := rng.Intn(10)+1, rng.Intn(10)+1
		lda := m + rng.Intn(3)
		incX := 1 + rng.Intn(2)
		incY := 1 + rng.Intn(2)
		a := randMat(rng, m, n, lda)
		x := randVec(rng, 1+(m-1)*incX)
		y := randVec(rng, 1+(n-1)*incY)
		alpha := 2*rng.Float64() - 1
		want := append([]float64(nil), a...)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				want[i+j*lda] += alpha * x[i*incX] * y[j*incY]
			}
		}
		Dger(m, n, alpha, x, incX, y, incY, a, lda)
		for i := range a {
			if !almostEq(a[i], want[i], 1e-14) {
				t.Fatalf("trial %d: a[%d]=%v want %v", trial, i, a[i], want[i])
			}
		}
	}
}

func TestDgerPreservesSentinels(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, n, lda := 3, 4, 5
	a := randMat(rng, m, n, lda)
	Dger(m, n, 1.5, randVec(rng, m), 1, randVec(rng, n), 1, a, lda)
	for j := 0; j < n; j++ {
		for i := m; i < lda; i++ {
			if a[i+j*lda] != 999 {
				t.Fatal("Dger wrote outside the m×n block")
			}
		}
	}
}

func TestDsymvAgainstDgemv(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(10) + 1
		lda := n + rng.Intn(2)
		// Build a full symmetric matrix, then run Dsymv on each triangle.
		full := make([]float64, lda*n)
		for j := 0; j < n; j++ {
			for i := 0; i <= j; i++ {
				v := 2*rng.Float64() - 1
				full[i+j*lda] = v
				full[j+i*lda] = v
			}
		}
		x := randVec(rng, n)
		alpha, beta := 2*rng.Float64()-1, 2*rng.Float64()-1
		for _, uplo := range []Uplo{Upper, Lower} {
			y := randVec(rng, n)
			want := refGemv(NoTrans, n, n, alpha, full, lda, x, 1, beta, y, 1)
			// Poison the unreferenced triangle to prove it is not read.
			poisoned := append([]float64(nil), full...)
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					if i != j && ((i < j) != (uplo == Upper)) {
						poisoned[i+j*lda] = 1e300
					}
				}
			}
			Dsymv(uplo, n, alpha, poisoned, lda, x, 1, beta, y, 1)
			for i := range y {
				if !almostEq(y[i], want[i], 1e-13) {
					t.Fatalf("Dsymv uplo=%c trial %d mismatch", uplo, trial)
				}
			}
		}
	}
}

func TestDtrmvDtrsvRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(8) + 1
		lda := n + rng.Intn(2)
		a := randMat(rng, n, n, lda)
		// Make the diagonal well-conditioned for the solve.
		for i := 0; i < n; i++ {
			a[i+i*lda] = 2 + rng.Float64()
		}
		for _, uplo := range []Uplo{Upper, Lower} {
			for _, trans := range []Transpose{NoTrans, Trans} {
				for _, diag := range []Diag{NonUnit, Unit} {
					x := randVec(rng, n)
					orig := append([]float64(nil), x...)
					Dtrmv(uplo, trans, diag, n, a, lda, x, 1)
					Dtrsv(uplo, trans, diag, n, a, lda, x, 1)
					for i := range x {
						if !almostEq(x[i], orig[i], 1e-10) {
							t.Fatalf("trmv/trsv roundtrip failed uplo=%c trans=%c diag=%c n=%d", uplo, trans, diag, n)
						}
					}
				}
			}
		}
	}
}

func TestDtrmvAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	n, lda := 5, 6
	a := randMat(rng, n, n, lda)
	for _, uplo := range []Uplo{Upper, Lower} {
		for _, trans := range []Transpose{NoTrans, Trans} {
			for _, diag := range []Diag{NonUnit, Unit} {
				// Densify the triangle.
				full := make([]float64, n*n)
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						inTri := i == j || ((i < j) == (uplo == Upper))
						switch {
						case i == j && diag == Unit:
							full[i+j*n] = 1
						case inTri:
							full[i+j*n] = a[i+j*lda]
						}
					}
				}
				x := randVec(rng, n)
				want := refGemv(trans, n, n, 1, full, n, x, 1, 0, make([]float64, n), 1)
				Dtrmv(uplo, trans, diag, n, a, lda, x, 1)
				for i := range x {
					if !almostEq(x[i], want[i], 1e-13) {
						t.Fatalf("Dtrmv mismatch uplo=%c trans=%c diag=%c", uplo, trans, diag)
					}
				}
			}
		}
	}
}

func TestLevel2Panics(t *testing.T) {
	a := make([]float64, 9)
	for name, f := range map[string]func(){
		"Dgemv bad trans": func() { Dgemv('X', 2, 2, 1, a, 2, a, 1, 0, a, 1) },
		"Dgemv bad lda":   func() { Dgemv(NoTrans, 3, 2, 1, a, 2, a, 1, 0, a, 1) },
		"Dger m<0":        func() { Dger(-1, 2, 1, a, 1, a, 1, a, 2) },
		"Dsymv bad uplo":  func() { Dsymv('Q', 2, 1, a, 2, a, 1, 0, a, 1) },
		"Dtrsv bad diag":  func() { Dtrsv(Upper, NoTrans, 'Z', 2, a, 2, a, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
