// Package blas is a from-scratch reference implementation of the subset of
// the BLAS needed by the paper's DGEFMM and its comparison codes: the Level 1
// vector kernels, the Level 2 DGEMV/DGER routines used by dynamic peeling's
// fixup steps, and Level 3 DGEMM (plus DSYMM/DSYRK/DTRMM/DTRSM for the
// eigensolver substrate). Matrices are column-major with an explicit leading
// dimension, exactly as in the FORTRAN reference BLAS.
//
// DGEMM's inner loop is pluggable (see Kernel): the three provided kernels
// stand in for the three machines of the paper's evaluation (a cache-blocked
// kernel for the RS/6000's tuned ESSL, a column/AXPY-oriented kernel for the
// CRAY C90 vector units, and an untuned scalar kernel for the T3D).
package blas

import "fmt"

// Transpose selects op(X) in Level 2/3 routines: op(X) = X or Xᵀ.
type Transpose byte

const (
	// NoTrans means op(X) = X.
	NoTrans Transpose = 'N'
	// Trans means op(X) = Xᵀ.
	Trans Transpose = 'T'
)

// IsTrans reports whether t selects the transposed operand.
func (t Transpose) IsTrans() bool { return t == Trans || t == 't' }

func (t Transpose) valid() bool {
	switch t {
	case NoTrans, Trans, 'n', 't':
		return true
	}
	return false
}

// Side selects whether the triangular/symmetric operand multiplies from the
// left or the right in DSYMM/DTRMM/DTRSM.
type Side byte

const (
	// Left means the special operand is applied on the left: B ← op(A)·B.
	Left Side = 'L'
	// Right means the special operand is applied on the right: B ← B·op(A).
	Right Side = 'R'
)

func (s Side) valid() bool {
	switch s {
	case Left, Right, 'l', 'r':
		return true
	}
	return false
}

func (s Side) isLeft() bool { return s == Left || s == 'l' }

// Uplo selects which triangle of a symmetric/triangular matrix is referenced.
type Uplo byte

const (
	// Upper references the upper triangle.
	Upper Uplo = 'U'
	// Lower references the lower triangle.
	Lower Uplo = 'L'
)

func (u Uplo) valid() bool {
	switch u {
	case Upper, Lower, 'u', 'l':
		return true
	}
	return false
}

func (u Uplo) isUpper() bool { return u == Upper || u == 'u' }

// Diag states whether a triangular matrix has an implicit unit diagonal.
type Diag byte

const (
	// NonUnit means the diagonal is stored and used.
	NonUnit Diag = 'N'
	// Unit means the diagonal is taken to be all ones.
	Unit Diag = 'U'
)

func (d Diag) valid() bool {
	switch d {
	case NonUnit, Unit, 'n', 'u':
		return true
	}
	return false
}

func (d Diag) isUnit() bool { return d == Unit || d == 'u' }

// xerbla reports an invalid argument in the style of the reference BLAS error
// handler. The reference XERBLA aborts the program; the Go analogue is a
// panic, which tests can assert on and callers with validated inputs never
// see.
func xerbla(routine string, arg int, msg string) {
	panic(fmt.Sprintf("blas: %s: parameter %d invalid: %s", routine, arg, msg))
}

func checkLD(routine string, arg int, name string, ld, minDim int) {
	if ld < maxInt(1, minDim) {
		xerbla(routine, arg, fmt.Sprintf("ld%s=%d < max(1,%d)", name, ld, minDim))
	}
}

func checkMatSize(routine string, name string, x []float64, rows, cols, ld int) {
	if rows == 0 || cols == 0 {
		return
	}
	if need := (cols-1)*ld + rows; len(x) < need {
		xerbla(routine, 0, fmt.Sprintf("%s has length %d, need at least %d for %dx%d ld=%d", name, len(x), need, rows, cols, ld))
	}
}

func checkVecSize(routine string, name string, x []float64, n, inc int) {
	if n == 0 {
		return
	}
	if inc == 0 {
		xerbla(routine, 0, fmt.Sprintf("inc%s is zero", name))
	}
	need := 1 + (n-1)*absInt(inc)
	if len(x) < need {
		xerbla(routine, 0, fmt.Sprintf("%s has length %d, need at least %d for n=%d inc=%d", name, len(x), need, n, inc))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
