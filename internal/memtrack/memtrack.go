// Package memtrack provides an accounting allocator for float64 workspace.
// The paper's Table 1 compares implementations by the amount of temporary
// memory they need; this package lets the reproduction *measure* live and
// peak temporary words rather than merely trusting the analytic bounds, and
// the tests in internal/strassen assert measured peaks against the paper's
// formulas.
package memtrack

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/phase"
)

// Tracker hands out float64 scratch slices and records the high-water mark
// of simultaneously live words. A Tracker additionally acts as a simple
// stack allocator with free-list reuse so that the Strassen recursion's
// temporaries are recycled rather than reallocated at every level.
//
// A nil *Tracker is valid and degrades to plain make() with no accounting.
// All methods are safe for concurrent use (the parallel Strassen schedule
// allocates from several product goroutines at once).
type Tracker struct {
	mu       sync.Mutex
	live     int64
	peak     int64
	allocs   int64
	reused   int64
	freelist map[int][][]float64
}

// New returns an empty tracker.
func New() *Tracker {
	return &Tracker{freelist: make(map[int][][]float64)}
}

// Alloc returns a zeroed slice of n float64s, preferring a recycled slice of
// the exact size. The returned slice counts as live until Free is called.
func (t *Tracker) Alloc(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("memtrack: Alloc(%d)", n))
	}
	if t == nil {
		return make([]float64, n)
	}
	if prof := phase.Active(); prof != nil {
		t0 := time.Now()
		s := t.alloc(n, true)
		prof.Add(phase.ArenaDraw, int64(time.Since(t0)), 0, int64(n)*8)
		return s
	}
	return t.alloc(n, true)
}

// AllocUninit is Alloc without the zeroing guarantee: a recycled slice is
// returned with its previous contents intact. It exists for workspace the
// caller fully overwrites before reading — the packed GEMM kernel's panel
// buffers — where zeroing would cost a full memory sweep per call. The
// returned slice counts as live until Free is called.
func (t *Tracker) AllocUninit(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("memtrack: AllocUninit(%d)", n))
	}
	if t == nil {
		return make([]float64, n)
	}
	if prof := phase.Active(); prof != nil {
		t0 := time.Now()
		s := t.alloc(n, false)
		prof.Add(phase.ArenaDraw, int64(time.Since(t0)), 0, int64(n)*8)
		return s
	}
	return t.alloc(n, false)
}

// alloc is the shared locked draw path; zero selects Alloc's zeroing
// guarantee. The bytes a draw accounts to phase.ArenaDraw are the words
// handed out (n·8), whether fresh or recycled — the phase exists to show
// how much workspace traffic the schedules induce, and zeroing/recycling
// cost shows up in the phase's wall time, not its byte count.
func (t *Tracker) alloc(n int, zero bool) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.live += int64(n)
	if t.live > t.peak {
		t.peak = t.live
	}
	if list := t.freelist[n]; len(list) > 0 {
		s := list[len(list)-1]
		t.freelist[n] = list[:len(list)-1]
		t.reused++
		if zero {
			for i := range s {
				s[i] = 0
			}
		}
		return s
	}
	t.allocs++
	return make([]float64, n)
}

// Free returns a slice obtained from Alloc to the tracker. The slice must
// not be used afterwards.
func (t *Tracker) Free(s []float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(s)
	t.live -= int64(n)
	if t.live < 0 {
		panic("memtrack: Free without matching Alloc (live count negative)")
	}
	t.freelist[n] = append(t.freelist[n], s)
}

// Live returns the number of currently live words.
func (t *Tracker) Live() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.live
}

// Peak returns the high-water mark of live words since creation (or the
// last ResetPeak).
func (t *Tracker) Peak() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peak
}

// Allocs returns how many fresh allocations were made (excludes reuse).
func (t *Tracker) Allocs() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.allocs
}

// Reused returns how many Alloc calls were satisfied from the free list.
func (t *Tracker) Reused() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reused
}

// Stats is an immutable snapshot of a Tracker's accounting, taken
// atomically with respect to concurrent Alloc/Free calls.
type Stats struct {
	// Live is the number of currently live words.
	Live int64 `json:"live_words"`
	// Peak is the high-water mark of live words.
	Peak int64 `json:"peak_words"`
	// Allocs counts fresh allocations (excludes free-list reuse).
	Allocs int64 `json:"allocs"`
	// Reused counts Alloc calls satisfied from the free list.
	Reused int64 `json:"reused"`
}

// Stats returns a consistent snapshot of all counters. A nil Tracker
// reports zeros.
func (t *Tracker) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{Live: t.live, Peak: t.peak, Allocs: t.allocs, Reused: t.reused}
}

// ResetPeak sets the peak to the current live count, so a fresh measurement
// can be taken without discarding the free list.
func (t *Tracker) ResetPeak() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peak = t.live
}
