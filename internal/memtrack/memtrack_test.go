package memtrack

import (
	"sync"
	"testing"
)

func TestPeakTracksHighWater(t *testing.T) {
	tr := New()
	a := tr.Alloc(100)
	b := tr.Alloc(50)
	if tr.Live() != 150 || tr.Peak() != 150 {
		t.Fatalf("live=%d peak=%d, want 150/150", tr.Live(), tr.Peak())
	}
	tr.Free(b)
	if tr.Live() != 100 || tr.Peak() != 150 {
		t.Fatalf("after free: live=%d peak=%d, want 100/150", tr.Live(), tr.Peak())
	}
	c := tr.Alloc(20)
	if tr.Peak() != 150 {
		t.Fatalf("peak moved to %d, want 150", tr.Peak())
	}
	tr.Free(a)
	tr.Free(c)
	if tr.Live() != 0 {
		t.Fatalf("live=%d, want 0", tr.Live())
	}
}

func TestReuseZeroesMemory(t *testing.T) {
	tr := New()
	a := tr.Alloc(10)
	for i := range a {
		a[i] = float64(i + 1)
	}
	tr.Free(a)
	b := tr.Alloc(10)
	if tr.Reused() != 1 {
		t.Fatalf("reused=%d, want 1", tr.Reused())
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %v", i, v)
		}
	}
}

func TestExactSizeReuseOnly(t *testing.T) {
	tr := New()
	a := tr.Alloc(10)
	tr.Free(a)
	_ = tr.Alloc(11)
	if tr.Reused() != 0 {
		t.Fatal("should not reuse a slice of a different size")
	}
	if tr.Allocs() != 2 {
		t.Fatalf("allocs=%d, want 2", tr.Allocs())
	}
}

func TestNilTrackerDegradesGracefully(t *testing.T) {
	var tr *Tracker
	s := tr.Alloc(5)
	if len(s) != 5 {
		t.Fatalf("nil tracker Alloc returned len %d", len(s))
	}
	tr.Free(s)
	if tr.Live() != 0 || tr.Peak() != 0 || tr.Allocs() != 0 || tr.Reused() != 0 {
		t.Fatal("nil tracker should report zeros")
	}
}

func TestResetPeak(t *testing.T) {
	tr := New()
	a := tr.Alloc(100)
	tr.Free(a)
	tr.ResetPeak()
	if tr.Peak() != 0 {
		t.Fatalf("peak=%d after reset with nothing live", tr.Peak())
	}
	b := tr.Alloc(30)
	defer tr.Free(b)
	if tr.Peak() != 30 {
		t.Fatalf("peak=%d, want 30", tr.Peak())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	tr := New()
	a := tr.Alloc(7)
	tr.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-free")
		}
	}()
	tr.Free(a) // drives live negative
}

func TestStatsSnapshot(t *testing.T) {
	tr := New()
	a := tr.Alloc(10)
	tr.Free(a)
	b := tr.Alloc(10) // reused
	c := tr.Alloc(4)
	s := tr.Stats()
	want := Stats{Live: 14, Peak: 14, Allocs: 2, Reused: 1}
	if s != want {
		t.Fatalf("Stats() = %+v, want %+v", s, want)
	}
	tr.Free(b)
	tr.Free(c)
	var nilTr *Tracker
	if nilTr.Stats() != (Stats{}) {
		t.Fatal("nil tracker Stats should be zero")
	}
}

func TestStatsUnderConcurrentAllocFree(t *testing.T) {
	tr := New()
	const (
		workers = 8
		rounds  = 200
		words   = 16
	)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	// Reader goroutine: every observed snapshot must be internally
	// consistent — no torn reads across the counters.
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := tr.Stats()
			if s.Live < 0 || s.Peak < s.Live {
				t.Errorf("inconsistent snapshot: %+v", s)
				return
			}
			if s.Live > int64(workers*words) {
				t.Errorf("live %d exceeds maximum possible %d", s.Live, workers*words)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < rounds; i++ {
				s := tr.Alloc(words)
				tr.Free(s)
			}
		}()
	}
	writers.Wait()
	close(stop)
	reader.Wait()
	final := tr.Stats()
	if final.Live != 0 {
		t.Fatalf("final live = %d, want 0", final.Live)
	}
	if final.Allocs+final.Reused != workers*rounds {
		t.Fatalf("allocs %d + reused %d != %d total Alloc calls",
			final.Allocs, final.Reused, workers*rounds)
	}
	if final.Peak < words || final.Peak > int64(workers*words) {
		t.Fatalf("peak %d outside [%d, %d]", final.Peak, words, workers*words)
	}
}

func TestZeroLengthAlloc(t *testing.T) {
	tr := New()
	s := tr.Alloc(0)
	if len(s) != 0 {
		t.Fatal("want empty slice")
	}
	tr.Free(s)
	if tr.Live() != 0 {
		t.Fatal("live should be zero")
	}
}
