package linsolve

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/eigen"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

func TestFactorReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for _, n := range []int{1, 2, 7, 33, 64, 129} {
		a := matrix.NewRandom(n, n, rng)
		// Diagonal dominance keeps the test well-conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		lu, err := Factor(a, &Options{BlockSize: 16})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		back := lu.Reconstruct()
		if d := matrix.MaxAbsDiff(back, a); d > 1e-10*float64(n) {
			t.Fatalf("n=%d: PA−LU mismatch %g", n, d)
		}
	}
}

func TestFactorNeedsPivoting(t *testing.T) {
	// A matrix whose (0,0) entry is 0 forces a row interchange.
	a := matrix.FromRows([][]float64{
		{0, 2, 1},
		{1, 1, 1},
		{2, 0, 3},
	})
	lu, err := Factor(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lu.Pivots[0] == 0 {
		t.Fatal("expected a pivot swap at step 0")
	}
	back := lu.Reconstruct()
	if d := matrix.MaxAbsDiff(back, a); d > 1e-13 {
		t.Fatalf("reconstruction off by %g", d)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	b := matrix.FromRows([][]float64{{5}, {10}})
	lu, err := Factor(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, err := lu.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if math.Abs(x.At(0, 0)-1) > 1e-12 || math.Abs(x.At(1, 0)-3) > 1e-12 {
		t.Fatalf("solution: %v", x)
	}
}

func TestSolveRandomMultipleRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	n, nrhs := 80, 5
	a := matrix.NewRandom(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	xTrue := matrix.NewRandom(n, nrhs, rng)
	b := matrix.NewDense(n, nrhs)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, nrhs, n, 1, a.Data, a.Stride, xTrue.Data, xTrue.Stride, 0, b.Data, b.Stride)
	lu, err := Factor(a, &Options{BlockSize: 24})
	if err != nil {
		t.Fatal(err)
	}
	x, err := lu.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(x, xTrue); d > 1e-9 {
		t.Fatalf("solve error %g", d)
	}
	if r := Residual(a, x, b); r > 1e-14 {
		t.Fatalf("residual %g", r)
	}
}

func TestSolveShapeMismatch(t *testing.T) {
	a := matrix.Identity(3)
	lu, err := Factor(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lu.Solve(matrix.NewDense(4, 1)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestFactorSingular(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{1, 2},
		{2, 4}, // rank 1
	})
	_, err := Factor(a, nil)
	if err == nil || !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
	if _, err := Factor(matrix.NewDense(2, 3), nil); err == nil {
		t.Fatal("want squareness error")
	}
}

func TestDet(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{4, 3},
		{6, 3},
	})
	lu, err := Factor(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := lu.Det(); math.Abs(d-(-6)) > 1e-12 {
		t.Fatalf("det = %v, want -6", d)
	}
	id, _ := Factor(matrix.Identity(5), nil)
	if math.Abs(id.Det()-1) > 1e-15 {
		t.Fatal("det(I) != 1")
	}
}

func TestStrassenEngineMatchesGemm(t *testing.T) {
	// The Bailey-style acceleration: same factorization through DGEFMM.
	rng := rand.New(rand.NewSource(503))
	n := 160
	a := matrix.NewRandom(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	luG, err := Factor(a, &Options{BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	luS, err := Factor(a, &Options{BlockSize: 32, Mul: eigen.StrassenMultiplier{
		Config: &strassen.Config{Kernel: blas.NaiveKernel{}, Criterion: strassen.Simple{Tau: 16}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(luG.Factors, luS.Factors); d > 1e-8 {
		t.Fatalf("factors differ by %g between engines", d)
	}
	for i := range luG.Pivots {
		if luG.Pivots[i] != luS.Pivots[i] {
			t.Fatalf("pivot %d differs", i)
		}
	}
	if luS.Stats.MMCount == 0 || luS.Stats.MMTime <= 0 {
		t.Fatal("MM statistics not collected")
	}
	// Solve through the Strassen-factored LU.
	xTrue := matrix.NewRandom(n, 2, rng)
	b := matrix.NewDense(n, 2)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, 2, n, 1, a.Data, a.Stride, xTrue.Data, xTrue.Stride, 0, b.Data, b.Stride)
	x, err := luS.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(x, xTrue); d > 1e-8 {
		t.Fatalf("Strassen-LU solve error %g", d)
	}
}

func TestBlockSizeIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	n := 100
	a := matrix.NewRandom(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	var ref *LU
	for _, nb := range []int{1, 7, 16, 50, 100, 200} {
		lu, err := Factor(a, &Options{BlockSize: nb})
		if err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		if ref == nil {
			ref = lu
			continue
		}
		if d := matrix.MaxAbsDiff(ref.Factors, lu.Factors); d > 1e-10 {
			t.Fatalf("nb=%d: factors differ by %g from nb=1", nb, d)
		}
	}
}

func TestResidualNormalization(t *testing.T) {
	a := matrix.Identity(4)
	x := matrix.NewDense(4, 1)
	b := matrix.NewDense(4, 1)
	if Residual(a, x, b) != 0 {
		t.Fatal("zero system should have zero residual")
	}
}
