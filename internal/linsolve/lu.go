// Package linsolve implements a blocked LU factorization with partial
// pivoting whose trailing-matrix updates run through a pluggable matrix
// multiplier — the use-case of the paper's reference [3] (Bailey, Lee,
// Simon, "Using Strassen's Algorithm to Accelerate the Solution of Linear
// Systems", J. Supercomputing 1990) and of the paper's own introduction:
// any speedup in matrix multiplication propagates to the blocked
// algorithms built on it. Swapping DGEMM for DGEFMM here accelerates a
// dense solve exactly the way the paper's eigensolver experiment does.
package linsolve

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// Multiplier is the pluggable engine for the trailing update
// C ← alpha·A·B + beta·C. eigen.GemmMultiplier and
// eigen.StrassenMultiplier satisfy it.
type Multiplier interface {
	// Name identifies the engine in reports.
	Name() string
	// Mul computes c ← alpha*a*b + beta*c.
	Mul(c *matrix.Dense, alpha float64, a, b *matrix.Dense, beta float64)
}

// gemmMultiplier is the default engine.
type gemmMultiplier struct{}

func (gemmMultiplier) Name() string { return "DGEMM" }

func (gemmMultiplier) Mul(c *matrix.Dense, alpha float64, a, b *matrix.Dense, beta float64) {
	blas.Dgemm(blas.NoTrans, blas.NoTrans, c.Rows, c.Cols, a.Cols,
		alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
}

// Options configures the factorization.
type Options struct {
	// Mul is the trailing-update engine; nil selects plain DGEMM.
	Mul Multiplier
	// BlockSize is the panel width; 0 selects 64. Trailing updates have
	// shapes (n−j)×nb × nb×(n−j), so a larger block gives the Strassen
	// engine more to chew on.
	BlockSize int
}

// Stats records the effort split, mirroring the paper's Table 6 reporting.
type Stats struct {
	// MMTime is time spent in the Multiplier (trailing updates).
	MMTime time.Duration
	// MMCount is the number of Multiplier calls.
	MMCount int
	// Total is the full factorization time.
	Total time.Duration
}

// LU is a factorization P·A = L·U with L unit lower triangular and U upper
// triangular, stored packed in Factors (LAPACK dgetrf layout).
type LU struct {
	// Factors holds U in the upper triangle and L's strict lower part.
	Factors *matrix.Dense
	// Pivots records the row interchanges: at step i, row i was swapped
	// with row Pivots[i] (i ≤ Pivots[i] < n).
	Pivots []int
	// Stats is the effort breakdown of the factorization.
	Stats Stats
}

// ErrSingular reports an exactly (or numerically) singular matrix.
var ErrSingular = errors.New("linsolve: matrix is singular")

// Factor computes the blocked LU factorization with partial pivoting of a
// square matrix. a is not modified.
func Factor(a *matrix.Dense, opt *Options) (*LU, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linsolve: Factor requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	var o Options
	if opt != nil {
		o = *opt
	}
	if o.Mul == nil {
		o.Mul = gemmMultiplier{}
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 64
	}

	start := time.Now()
	w := a.Clone()
	piv := make([]int, n)
	var stats Stats

	for j0 := 0; j0 < n; j0 += o.BlockSize {
		jb := minInt(o.BlockSize, n-j0)

		// Unblocked panel factorization with partial pivoting; row swaps
		// are applied across the full width so L and U stay consistent.
		if err := panelLU(w, j0, jb, piv); err != nil {
			return nil, err
		}
		if j0+jb >= n {
			break
		}

		// U12 ← L11⁻¹ · A12 (triangular solve on the block row).
		l11 := w.Slice(j0, j0, jb, jb)
		a12 := w.Slice(j0, j0+jb, jb, n-j0-jb)
		blas.Dtrsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit,
			jb, n-j0-jb, 1, l11.Data, l11.Stride, a12.Data, a12.Stride)

		// Trailing update A22 ← A22 − L21·U12 — the flop-dominant step that
		// the Strassen engine accelerates.
		l21 := w.Slice(j0+jb, j0, n-j0-jb, jb)
		a22 := w.Slice(j0+jb, j0+jb, n-j0-jb, n-j0-jb)
		t := time.Now()
		o.Mul.Mul(a22, -1, l21, a12, 1)
		stats.MMTime += time.Since(t)
		stats.MMCount++
	}
	stats.Total = time.Since(start)
	return &LU{Factors: w, Pivots: piv, Stats: stats}, nil
}

// panelLU factors the panel w[j0:n, j0:j0+jb] in place (right-looking,
// BLAS-2) and applies each pivot swap across the whole matrix.
func panelLU(w *matrix.Dense, j0, jb int, piv []int) error {
	n := w.Rows
	for jj := 0; jj < jb; jj++ {
		j := j0 + jj
		// Pivot search in column j, rows j..n.
		col := w.Data[j*w.Stride:]
		ip := j + blas.Idamax(n-j, col[j:], 1)
		piv[j] = ip
		if ip != j {
			blas.Dswap(w.Cols, w.Data[j:], w.Stride, w.Data[ip:], w.Stride)
		}
		pivVal := w.At(j, j)
		if pivVal == 0 || math.Abs(pivVal) < 1e-300 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, j)
		}
		// Scale the multipliers.
		blas.Dscal(n-j-1, 1/pivVal, col[j+1:], 1)
		// Rank-one update of the rest of the panel.
		if jj+1 < jb {
			blas.Dger(n-j-1, jb-jj-1, -1,
				col[j+1:], 1,
				w.Data[(j+1)*w.Stride+j:], w.Stride,
				w.Data[(j+1)*w.Stride+j+1:], w.Stride)
		}
	}
	return nil
}

// Solve solves A·X = B for X given the factorization; B may have multiple
// right-hand-side columns and is not modified.
func (lu *LU) Solve(b *matrix.Dense) (*matrix.Dense, error) {
	n := lu.Factors.Rows
	if b.Rows != n {
		return nil, fmt.Errorf("linsolve: Solve: B has %d rows, want %d", b.Rows, n)
	}
	x := b.Clone()
	// Apply the pivots: X ← P·B.
	for i := 0; i < n; i++ {
		if ip := lu.Pivots[i]; ip != i {
			blas.Dswap(x.Cols, x.Data[i:], x.Stride, x.Data[ip:], x.Stride)
		}
	}
	// L·Y = P·B, then U·X = Y.
	blas.Dtrsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit,
		n, x.Cols, 1, lu.Factors.Data, lu.Factors.Stride, x.Data, x.Stride)
	blas.Dtrsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit,
		n, x.Cols, 1, lu.Factors.Data, lu.Factors.Stride, x.Data, x.Stride)
	return x, nil
}

// Det returns the determinant of A from the factorization.
func (lu *LU) Det() float64 {
	n := lu.Factors.Rows
	det := 1.0
	for i := 0; i < n; i++ {
		det *= lu.Factors.At(i, i)
		if lu.Pivots[i] != i {
			det = -det
		}
	}
	return det
}

// Reconstruct rebuilds P⁻¹·L·U, which must equal the original matrix; used
// by tests and diagnostics.
func (lu *LU) Reconstruct() *matrix.Dense {
	n := lu.Factors.Rows
	l := matrix.Identity(n)
	u := matrix.NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := lu.Factors.At(i, j)
			if i > j {
				l.Set(i, j, v)
			} else {
				u.Set(i, j, v)
			}
		}
	}
	prod := matrix.NewDense(n, n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, l.Data, l.Stride, u.Data, u.Stride, 0, prod.Data, prod.Stride)
	// Undo the pivoting: rows were swapped forward during factorization,
	// so apply the swaps to LU in reverse to recover A.
	for i := n - 1; i >= 0; i-- {
		if ip := lu.Pivots[i]; ip != i {
			blas.Dswap(n, prod.Data[i:], prod.Stride, prod.Data[ip:], prod.Stride)
		}
	}
	return prod
}

// Residual returns ‖A·X − B‖max / (‖A‖max·‖X‖max·n), a normalized solve
// residual.
func Residual(a, x, b *matrix.Dense) float64 {
	n := a.Rows
	ax := matrix.NewDense(n, x.Cols)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, x.Cols, n, 1, a.Data, a.Stride, x.Data, x.Stride, 0, ax.Data, ax.Stride)
	num := matrix.MaxAbsDiff(ax, b)
	den := matrix.MaxAbs(a) * matrix.MaxAbs(x) * float64(n)
	if den == 0 {
		return num
	}
	return num / den
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
