package linsolve

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// spdMatrix builds a well-conditioned symmetric positive definite matrix
// A = GᵀG + n·I.
func spdMatrix(n int, rng *rand.Rand) *matrix.Dense {
	g := matrix.NewRandom(n, n, rng)
	a := matrix.NewDense(n, n)
	blas.Dgemm(blas.Trans, blas.NoTrans, n, n, n, 1, g.Data, g.Stride, g.Data, g.Stride, 0, a.Data, a.Stride)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(551))
	for _, n := range []int{1, 2, 5, 16, 33, 64, 100} {
		a := spdMatrix(n, rng)
		ch, err := FactorCholesky(a, &CholeskyOptions{BlockSize: 16, Base: 8})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		back := ch.Reconstruct()
		if d := matrix.MaxAbsDiff(back, a); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: LLᵀ−A = %g", n, d)
		}
		// L must be lower triangular with positive diagonal.
		for j := 0; j < n; j++ {
			if ch.L.At(j, j) <= 0 {
				t.Fatal("nonpositive diagonal")
			}
			for i := 0; i < j; i++ {
				if ch.L.At(i, j) != 0 {
					t.Fatal("upper triangle not zeroed")
				}
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(552))
	n := 80
	a := spdMatrix(n, rng)
	xTrue := matrix.NewRandom(n, 3, rng)
	b := matrix.NewDense(n, 3)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, 3, n, 1, a.Data, a.Stride, xTrue.Data, xTrue.Stride, 0, b.Data, b.Stride)
	ch, err := FactorCholesky(a, &CholeskyOptions{BlockSize: 24})
	if err != nil {
		t.Fatal(err)
	}
	x, err := ch.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(x, xTrue); d > 1e-8 {
		t.Fatalf("solve error %g", d)
	}
	if _, err := ch.Solve(matrix.NewDense(n+1, 1)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := matrix.FromRows([][]float64{
		{1, 2},
		{2, 1}, // eigenvalues 3 and −1
	})
	_, err := FactorCholesky(a, nil)
	if err == nil || !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
	if _, err := FactorCholesky(matrix.NewDense(2, 3), nil); err == nil {
		t.Fatal("want squareness error")
	}
}

func TestCholeskyReadsLowerTriangleOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(553))
	n := 20
	a := spdMatrix(n, rng)
	// Poison the strict upper triangle: the factorization must not care.
	poisoned := a.Clone()
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			poisoned.Set(i, j, 1e9)
		}
	}
	ch1, err := FactorCholesky(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := FactorCholesky(poisoned, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(ch1.L, ch2.L); d > 1e-12 {
		t.Fatalf("upper triangle leaked into the factor: %g", d)
	}
}

func TestCholeskyBlockSizeIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(554))
	n := 70
	a := spdMatrix(n, rng)
	var ref *Cholesky
	for _, nb := range []int{1, 8, 32, 70, 128} {
		ch, err := FactorCholesky(a, &CholeskyOptions{BlockSize: nb, Base: 8})
		if err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		if ref == nil {
			ref = ch
			continue
		}
		if d := matrix.MaxAbsDiff(ref.L, ch.L); d > 1e-9 {
			t.Fatalf("nb=%d: factor differs by %g", nb, d)
		}
	}
}

func TestCholeskyStrassenConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	n := 96
	a := spdMatrix(n, rng)
	cfg := &strassen.Config{Kernel: blas.NaiveKernel{}, Criterion: strassen.Simple{Tau: 8}}
	ch, err := FactorCholesky(a, &CholeskyOptions{BlockSize: 24, Base: 8, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	back := ch.Reconstruct()
	if d := matrix.MaxAbsDiff(back, a); d > 1e-8 {
		t.Fatalf("Strassen-driven Cholesky off by %g", d)
	}
	if ch.Stats.MMCount == 0 {
		t.Fatal("no trailing updates recorded")
	}
}

func TestCholeskyDiagonalMatrix(t *testing.T) {
	a := matrix.NewDense(5, 5)
	for i := 0; i < 5; i++ {
		a.Set(i, i, float64(i+1)*float64(i+1))
	}
	ch, err := FactorCholesky(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(ch.L.At(i, i)-float64(i+1)) > 1e-14 {
			t.Fatalf("L(%d,%d) = %v", i, i, ch.L.At(i, i))
		}
	}
}
