package linsolve

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/blas"
	"repro/internal/fastlevel3"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// Cholesky is a factorization A = L·Lᵀ of a symmetric positive definite
// matrix, computed blocked so that the flop-dominant symmetric rank-k
// update of the trailing matrix runs on the fast Level 3 routines (and
// through them on DGEFMM) — the same propagation path as the LU solver,
// completing the set of blocked one-sided factorizations built on the
// paper's multiply.
type Cholesky struct {
	// L is the lower triangular factor (upper triangle zeroed).
	L *matrix.Dense
	// Stats is the effort breakdown.
	Stats Stats
}

// ErrNotPositiveDefinite reports a failed Cholesky pivot.
var ErrNotPositiveDefinite = errors.New("linsolve: matrix is not positive definite")

// CholeskyOptions configures FactorCholesky.
type CholeskyOptions struct {
	// Config is the DGEFMM configuration used inside the trailing updates;
	// nil selects the defaults.
	Config *strassen.Config
	// BlockSize is the panel width; 0 selects 64.
	BlockSize int
	// Base is the unblocked threshold handed to the fast Level 3 recursion;
	// 0 selects 64.
	Base int
}

// FactorCholesky computes the lower Cholesky factor of a symmetric positive
// definite matrix. Only the lower triangle of a is read; a is not modified.
func FactorCholesky(a *matrix.Dense, opt *CholeskyOptions) (*Cholesky, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linsolve: FactorCholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	var o CholeskyOptions
	if opt != nil {
		o = *opt
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 64
	}
	if o.Base <= 0 {
		o.Base = 64
	}
	f3 := &fastlevel3.Options{
		Base:   o.Base,
		Engine: fastlevel3.StrassenEngine{Config: o.Config},
	}

	start := time.Now()
	w := a.Clone()
	var stats Stats

	for j0 := 0; j0 < n; j0 += o.BlockSize {
		jb := minInt(o.BlockSize, n-j0)

		// Unblocked Cholesky of the diagonal block.
		if err := cholUnblocked(w.Slice(j0, j0, jb, jb)); err != nil {
			return nil, fmt.Errorf("%w (panel at %d)", err, j0)
		}
		if j0+jb >= n {
			break
		}
		// L21 ← A21·L11⁻ᵀ : triangular solve from the right, expressed as
		// the left-solve of the transposed system column block by block:
		// X·L11ᵀ = A21 ⇔ L11·Xᵀ = A21ᵀ. Use the BLAS right-side solve.
		l11 := w.Slice(j0, j0, jb, jb)
		a21 := w.Slice(j0+jb, j0, n-j0-jb, jb)
		blas.Dtrsm(blas.Right, blas.Lower, blas.Trans, blas.NonUnit,
			a21.Rows, a21.Cols, 1, l11.Data, l11.Stride, a21.Data, a21.Stride)

		// Trailing update A22 ← A22 − L21·L21ᵀ : the flop-dominant SYRK,
		// run on the fast Level 3 machinery.
		a22 := w.Slice(j0+jb, j0+jb, n-j0-jb, n-j0-jb)
		t := time.Now()
		fastlevel3.Dsyrk(f3, blas.Lower, blas.NoTrans, a22.Rows, jb, -1,
			a21.Data, a21.Stride, 1, a22.Data, a22.Stride)
		stats.MMTime += time.Since(t)
		stats.MMCount++
	}

	// Zero the strict upper triangle so L is clean.
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			w.Set(i, j, 0)
		}
	}
	stats.Total = time.Since(start)
	return &Cholesky{L: w, Stats: stats}, nil
}

// cholUnblocked is the textbook right-looking Cholesky on a small block.
func cholUnblocked(a *matrix.Dense) error {
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for l := 0; l < j; l++ {
			v := a.At(j, l)
			d -= v * v
		}
		if d <= 0 {
			return ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for l := 0; l < j; l++ {
				s -= a.At(i, l) * a.At(j, l)
			}
			a.Set(i, j, s/d)
		}
	}
	return nil
}

// Solve solves A·X = B given the factorization (two triangular solves).
// B is not modified.
func (ch *Cholesky) Solve(b *matrix.Dense) (*matrix.Dense, error) {
	n := ch.L.Rows
	if b.Rows != n {
		return nil, fmt.Errorf("linsolve: Cholesky.Solve: B has %d rows, want %d", b.Rows, n)
	}
	x := b.Clone()
	blas.Dtrsm(blas.Left, blas.Lower, blas.NoTrans, blas.NonUnit,
		n, x.Cols, 1, ch.L.Data, ch.L.Stride, x.Data, x.Stride)
	blas.Dtrsm(blas.Left, blas.Lower, blas.Trans, blas.NonUnit,
		n, x.Cols, 1, ch.L.Data, ch.L.Stride, x.Data, x.Stride)
	return x, nil
}

// Reconstruct returns L·Lᵀ for verification.
func (ch *Cholesky) Reconstruct() *matrix.Dense {
	n := ch.L.Rows
	out := matrix.NewDense(n, n)
	blas.Dgemm(blas.NoTrans, blas.Trans, n, n, n, 1,
		ch.L.Data, ch.L.Stride, ch.L.Data, ch.L.Stride, 0, out.Data, out.Stride)
	return out
}
