// Package qr implements a blocked Householder QR factorization in compact
// WY form, with the block-reflector updates expressed as general matrix
// multiplications on a pluggable engine. It connects the paper to its
// reference [17] (Knight, "Fast rectangular matrix multiplication and QR
// decomposition", Lin. Alg. Appl. 1995): once the trailing update
// C ← (I − V·Tᵀ·Vᵀ)·C is two GEMMs, Strassen's algorithm accelerates QR
// the same way it accelerates the eigensolver and the LU solver.
package qr

import (
	"fmt"
	"time"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// Engine performs the GEMM-shaped block-reflector updates.
type Engine interface {
	// GEMM mirrors blas.Dgemm semantics.
	GEMM(transA, transB blas.Transpose, m, n, k int, alpha float64,
		a []float64, lda int, b []float64, ldb int, beta float64,
		c []float64, ldc int)
}

type strassenEngine struct{ cfg *strassen.Config }

func (s strassenEngine) GEMM(transA, transB blas.Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	strassen.DGEFMM(s.cfg, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

type gemmEngine struct{ kern blas.Kernel }

func (g gemmEngine) GEMM(transA, transB blas.Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	blas.DgemmKernel(g.kern, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// StrassenEngine returns an Engine running on DGEFMM (nil cfg = defaults).
func StrassenEngine(cfg *strassen.Config) Engine { return strassenEngine{cfg: cfg} }

// GemmEngine returns an Engine running on plain DGEMM.
func GemmEngine(kern blas.Kernel) Engine { return gemmEngine{kern: kern} }

// Options configures the factorization.
type Options struct {
	// Engine for block updates; nil selects DGEFMM defaults.
	Engine Engine
	// BlockSize is the panel width nb; 0 selects 32.
	BlockSize int
}

func (o *Options) engine() Engine {
	if o == nil || o.Engine == nil {
		return strassenEngine{}
	}
	return o.Engine
}

func (o *Options) blockSize() int {
	if o == nil || o.BlockSize <= 0 {
		return 32
	}
	return o.BlockSize
}

// Stats records the effort split of a factorization.
type Stats struct {
	// MMTime is time spent in the Engine.
	MMTime time.Duration
	// MMCount is the number of Engine calls.
	MMCount int
	// Total is the full factorization time.
	Total time.Duration
}

// QR holds A = Q·R for an m×n matrix with m ≥ n: R in the upper triangle of
// Factors, the Householder vectors below the diagonal (unit lower
// trapezoidal, LAPACK dgeqrf layout), and the scalar factors in Taus.
type QR struct {
	// Factors packs R and the Householder vectors.
	Factors *matrix.Dense
	// Taus holds the n Householder scalar factors.
	Taus []float64
	// Stats is the effort breakdown.
	Stats Stats

	opt *Options
}

// Factor computes the blocked QR factorization of a (m ≥ n required).
// a is not modified.
func Factor(a *matrix.Dense, opt *Options) (*QR, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("qr: Factor requires m ≥ n, got %dx%d", m, n)
	}
	w := a.Clone()
	taus := make([]float64, n)
	var stats Stats
	start := time.Now()
	nb := opt.blockSize()
	eng := opt.engine()

	for j0 := 0; j0 < n; j0 += nb {
		jb := minInt(nb, n-j0)
		// Unblocked QR of the panel w[j0:m, j0:j0+jb].
		panelQR(w, j0, jb, taus)
		if j0+jb >= n {
			break
		}
		// Form T (jb×jb upper triangular) and apply the block reflector
		// (I − V·Tᵀ·Vᵀ) to the trailing columns.
		v := explicitV(w, j0, jb)
		tm := formT(v, taus[j0:j0+jb])
		applyBlockLeft(eng, &stats, v, tm, true, w.Slice(j0, j0+jb, m-j0, n-j0-jb))
	}
	stats.Total = time.Since(start)
	return &QR{Factors: w, Taus: taus, Stats: stats, opt: opt}, nil
}

// panelQR runs unblocked Householder QR on w[j0:m, j0:j0+jb].
func panelQR(w *matrix.Dense, j0, jb int, taus []float64) {
	m := w.Rows
	for jj := 0; jj < jb; jj++ {
		j := j0 + jj
		col := w.Data[j*w.Stride:]
		// Householder vector for w[j:m, j].
		alpha := blas.Dnrm2(m-j, col[j:], 1)
		if alpha == 0 {
			taus[j] = 0
			continue
		}
		if col[j] > 0 {
			alpha = -alpha
		}
		v0 := col[j] - alpha
		taus[j] = -v0 / alpha
		for i := j + 1; i < m; i++ {
			col[i] /= v0
		}
		col[j] = alpha
		// Apply (I − tau·v·vᵀ) to the remaining panel columns.
		for l := j + 1; l < j0+jb; l++ {
			cl := w.Data[l*w.Stride:]
			s := cl[j]
			for i := j + 1; i < m; i++ {
				s += col[i] * cl[i]
			}
			s *= taus[j]
			cl[j] -= s
			for i := j + 1; i < m; i++ {
				cl[i] -= s * col[i]
			}
		}
	}
}

// explicitV materializes the unit lower trapezoidal V of a panel (rows
// j0..m, jb columns) with the implicit ones and zeros written out, so the
// reflector application is pure GEMM.
func explicitV(w *matrix.Dense, j0, jb int) *matrix.Dense {
	m := w.Rows
	v := matrix.NewDense(m-j0, jb)
	for jj := 0; jj < jb; jj++ {
		v.Set(jj, jj, 1)
		for i := j0 + jj + 1; i < m; i++ {
			v.Set(i-j0, jj, w.At(i, j0+jj))
		}
	}
	return v
}

// formT builds the compact-WY T factor: H1·H2·…·Hjb = I − V·T·Vᵀ with T
// upper triangular (LAPACK dlarft, forward/columnwise).
func formT(v *matrix.Dense, taus []float64) *matrix.Dense {
	jb := v.Cols
	t := matrix.NewDense(jb, jb)
	for i := 0; i < jb; i++ {
		tau := taus[i]
		t.Set(i, i, tau)
		if i == 0 || tau == 0 {
			continue
		}
		// tmp = Vᵀ[0:i, :]·v_i  (i.e. V[:, 0:i]ᵀ · V[:, i])
		tmp := make([]float64, i)
		for c := 0; c < i; c++ {
			var s float64
			for r := 0; r < v.Rows; r++ {
				s += v.At(r, c) * v.At(r, i)
			}
			tmp[c] = s
		}
		// T[0:i, i] = −tau · T[0:i, 0:i] · tmp
		for r := 0; r < i; r++ {
			var s float64
			for c := r; c < i; c++ {
				s += t.At(r, c) * tmp[c]
			}
			t.Set(r, i, -tau*s)
		}
	}
	return t
}

// applyBlockLeft computes C ← (I − V·op(T)·Vᵀ)·C where V is (rows×jb) and C
// is (rows×cols); op(T) = Tᵀ when transT (the Qᵀ direction for forward
// blocks). The two large products run on the engine; the small jb×jb
// triangular product is done directly.
func applyBlockLeft(eng Engine, stats *Stats, v, t *matrix.Dense, transT bool, c *matrix.Dense) {
	rows, jb := v.Rows, v.Cols
	cols := c.Cols
	if cols == 0 {
		return
	}
	// W = Vᵀ·C (jb×cols): GEMM 1.
	w := matrix.NewDense(jb, cols)
	start := time.Now()
	eng.GEMM(blas.Trans, blas.NoTrans, jb, cols, rows, 1,
		v.Data, v.Stride, c.Data, c.Stride, 0, w.Data, w.Stride)
	stats.MMTime += time.Since(start)
	stats.MMCount++
	// W ← op(T)·W (small triangular multiply).
	tt := blas.NoTrans
	if transT {
		tt = blas.Trans
	}
	blas.Dtrmm(blas.Left, blas.Upper, tt, blas.NonUnit, jb, cols, 1, t.Data, t.Stride, w.Data, w.Stride)
	// C ← C − V·W: GEMM 2.
	start = time.Now()
	eng.GEMM(blas.NoTrans, blas.NoTrans, rows, cols, jb, -1,
		v.Data, v.Stride, w.Data, w.Stride, 1, c.Data, c.Stride)
	stats.MMTime += time.Since(start)
	stats.MMCount++
}

// R returns the n×n upper triangular factor.
func (f *QR) R() *matrix.Dense {
	n := f.Factors.Cols
	r := matrix.NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			r.Set(i, j, f.Factors.At(i, j))
		}
	}
	return r
}

// QMul computes C ← Q·C (trans false) or C ← Qᵀ·C (trans true) in place;
// C must have m rows.
func (f *QR) QMul(c *matrix.Dense, trans bool) error {
	m, n := f.Factors.Rows, f.Factors.Cols
	if c.Rows != m {
		return fmt.Errorf("qr: QMul: C has %d rows, want %d", c.Rows, m)
	}
	nb := f.opt.blockSize()
	eng := f.opt.engine()
	apply := func(j0 int) {
		jb := minInt(nb, n-j0)
		v := explicitV(f.Factors, j0, jb)
		t := formT(v, f.Taus[j0:j0+jb])
		applyBlockLeft(eng, &f.Stats, v, t, trans, c.Slice(j0, 0, m-j0, c.Cols))
	}
	if trans {
		// Qᵀ = (H1…Hk)ᵀ: apply blocks forward.
		for j0 := 0; j0 < n; j0 += nb {
			apply(j0)
		}
		return nil
	}
	// Q: apply blocks backward with op(T) = T.
	start := ((n - 1) / nb) * nb
	for j0 := start; j0 >= 0; j0 -= nb {
		apply(j0)
	}
	return nil
}

// FormQ returns the explicit m×n thin Q factor.
func (f *QR) FormQ() (*matrix.Dense, error) {
	m, n := f.Factors.Rows, f.Factors.Cols
	q := matrix.NewDense(m, n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 1)
	}
	if err := f.QMul(q, false); err != nil {
		return nil, err
	}
	return q, nil
}

// LeastSquares solves min‖A·x − b‖₂ for full-column-rank A via the
// factorization: x = R⁻¹·(Qᵀ·b)[0:n]. b may have multiple columns.
func (f *QR) LeastSquares(b *matrix.Dense) (*matrix.Dense, error) {
	m, n := f.Factors.Rows, f.Factors.Cols
	if b.Rows != m {
		return nil, fmt.Errorf("qr: LeastSquares: B has %d rows, want %d", b.Rows, m)
	}
	w := b.Clone()
	if err := f.QMul(w, true); err != nil {
		return nil, err
	}
	x := matrix.NewDense(n, b.Cols)
	x.CopyFrom(w.Slice(0, 0, n, b.Cols))
	blas.Dtrsm(blas.Left, blas.Upper, blas.NoTrans, blas.NonUnit,
		n, x.Cols, 1, f.Factors.Data, f.Factors.Stride, x.Data, x.Stride)
	return x, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
