package qr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

func testOpt() *Options {
	return &Options{
		BlockSize: 8,
		Engine: StrassenEngine(&strassen.Config{
			Kernel:    blas.NaiveKernel{},
			Criterion: strassen.Simple{Tau: 8},
		}),
	}
}

func orthoErr(q *matrix.Dense) float64 {
	n := q.Cols
	g := matrix.NewDense(n, n)
	blas.Dgemm(blas.Trans, blas.NoTrans, n, n, q.Rows, 1, q.Data, q.Stride, q.Data, q.Stride, 0, g.Data, g.Stride)
	var worst float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d := math.Abs(g.At(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestFactorReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	for _, dims := range [][2]int{{1, 1}, {5, 3}, {16, 16}, {37, 20}, {64, 64}, {100, 33}} {
		m, n := dims[0], dims[1]
		a := matrix.NewRandom(m, n, rng)
		f, err := Factor(a, testOpt())
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		q, err := f.FormQ()
		if err != nil {
			t.Fatal(err)
		}
		if e := orthoErr(q); e > 1e-11*float64(m) {
			t.Fatalf("dims=%v: QᵀQ−I = %g", dims, e)
		}
		r := f.R()
		qr := matrix.NewDense(m, n)
		blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, n, 1, q.Data, q.Stride, r.Data, r.Stride, 0, qr.Data, qr.Stride)
		if d := matrix.MaxAbsDiff(qr, a); d > 1e-11*float64(m) {
			t.Fatalf("dims=%v: QR−A = %g", dims, d)
		}
	}
}

func TestRIsUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	f, err := Factor(matrix.NewRandom(30, 18, rng), testOpt())
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	for j := 0; j < 18; j++ {
		for i := j + 1; i < 18; i++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %v below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestQMulRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(803))
	m, n := 40, 25
	a := matrix.NewRandom(m, n, rng)
	f, err := Factor(a, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	c := matrix.NewRandom(m, 4, rng)
	orig := c.Clone()
	if err := f.QMul(c, true); err != nil {
		t.Fatal(err)
	}
	if err := f.QMul(c, false); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(c, orig); d > 1e-11*float64(m) {
		t.Fatalf("Q·Qᵀ·C ≠ C: %g", d)
	}
	if err := f.QMul(matrix.NewDense(m+1, 1), true); err == nil {
		t.Fatal("want shape error")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square, full rank: least squares is the exact solve.
	rng := rand.New(rand.NewSource(804))
	n := 30
	a := matrix.NewRandom(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	xTrue := matrix.NewRandom(n, 2, rng)
	b := matrix.NewDense(n, 2)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, 2, n, 1, a.Data, a.Stride, xTrue.Data, xTrue.Stride, 0, b.Data, b.Stride)
	f, err := Factor(a, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.LeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(x, xTrue); d > 1e-9 {
		t.Fatalf("exact solve error %g", d)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Residual of the LS solution must be orthogonal to range(A):
	// Aᵀ(Ax − b) = 0.
	rng := rand.New(rand.NewSource(805))
	m, n := 60, 20
	a := matrix.NewRandom(m, n, rng)
	b := matrix.NewRandom(m, 1, rng)
	f, err := Factor(a, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.LeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	res := b.Clone()
	blas.Dgemm(blas.NoTrans, blas.NoTrans, m, 1, n, -1, a.Data, a.Stride, x.Data, x.Stride, 1, res.Data, res.Stride)
	atr := matrix.NewDense(n, 1)
	blas.Dgemm(blas.Trans, blas.NoTrans, n, 1, m, 1, a.Data, a.Stride, res.Data, res.Stride, 0, atr.Data, atr.Stride)
	if v := matrix.MaxAbs(atr); v > 1e-10*float64(m) {
		t.Fatalf("normal-equation residual %g", v)
	}
}

func TestBlockSizeIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(806))
	m, n := 50, 34
	a := matrix.NewRandom(m, n, rng)
	var refQ *matrix.Dense
	for _, nb := range []int{1, 5, 16, 34, 100} {
		opt := testOpt()
		opt.BlockSize = nb
		f, err := Factor(a, opt)
		if err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		q, err := f.FormQ()
		if err != nil {
			t.Fatal(err)
		}
		if refQ == nil {
			refQ = q
			continue
		}
		if d := matrix.MaxAbsDiff(refQ, q); d > 1e-10*float64(m) {
			t.Fatalf("nb=%d: Q differs by %g from nb=1", nb, d)
		}
	}
}

func TestEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(807))
	m, n := 70, 40
	a := matrix.NewRandom(m, n, rng)
	fg, err := Factor(a, &Options{BlockSize: 16, Engine: GemmEngine(blas.NaiveKernel{})})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Factor(a, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(fg.Factors, fs.Factors); d > 1e-9 {
		t.Fatalf("factorizations differ across engines by %g", d)
	}
	if fs.Stats.MMCount == 0 {
		t.Fatal("Strassen engine saw no GEMMs")
	}
}

func TestFactorRejectsWide(t *testing.T) {
	if _, err := Factor(matrix.NewDense(3, 5), nil); err == nil {
		t.Fatal("want m ≥ n error")
	}
}

func TestZeroColumnTau(t *testing.T) {
	// A zero column yields tau = 0; factorization must still reconstruct.
	a := matrix.NewDense(6, 3)
	a.Set(0, 0, 2)
	a.Set(1, 0, 1)
	// column 1 all zero
	a.Set(2, 2, 3)
	f, err := Factor(a, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	q, err := f.FormQ()
	if err != nil {
		t.Fatal(err)
	}
	r := f.R()
	qr := matrix.NewDense(6, 3)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, 6, 3, 3, 1, q.Data, q.Stride, r.Data, r.Stride, 0, qr.Data, qr.Stride)
	if d := matrix.MaxAbsDiff(qr, a); d > 1e-12 {
		t.Fatalf("degenerate column: %g", d)
	}
}
