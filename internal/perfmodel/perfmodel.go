// Package perfmodel implements the modeling methodology of the paper's
// companion report (reference [14], Huss-Lederman et al., CCS-TR-96-14):
// the paper's Section 3.4 observes that "in practice operation count is not
// an accurate enough predictor of performance to be used to tune actual
// code" and refers to richer models. This package fits a two-term cost
// model to measured multiply times,
//
//	t(m, k, n) ≈ c₃·mkn + c₂·(mk + kn + mn) + c₀,
//
// separating the cubic arithmetic term from the quadratic memory-traffic
// term (whose machine-dependent ratio is exactly what moves the Strassen
// cutoff away from the op-count prediction of 12), and uses the fitted
// models to *predict* the square crossover, which can then be checked
// against the measured Table 2 values.
//
// The least-squares fit runs on this repository's own blocked QR.
package perfmodel

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/qr"
	"repro/internal/strassen"
)

// Sample is one timed multiplication.
type Sample struct {
	M, K, N int
	Seconds float64
}

// Model is the fitted cost surface t = C3·mkn + C2·(mk+kn+mn) + C0.
type Model struct {
	C3, C2, C0 float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Predict evaluates the model.
func (mo Model) Predict(m, k, n int) float64 {
	cubic := float64(m) * float64(k) * float64(n)
	quad := float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n)
	return mo.C3*cubic + mo.C2*quad + mo.C0
}

// String formats the model.
func (mo Model) String() string {
	return fmt.Sprintf("t ≈ %.3g·mkn + %.3g·(mk+kn+mn) + %.3g  (R²=%.4f)", mo.C3, mo.C2, mo.C0, mo.R2)
}

// Fit computes the least-squares model for the samples (at least 3
// distinct shapes required).
func Fit(samples []Sample) (Model, error) {
	if len(samples) < 3 {
		return Model{}, errors.New("perfmodel: need at least 3 samples")
	}
	rows := len(samples)
	design := matrix.NewDense(rows, 3)
	rhs := matrix.NewDense(rows, 1)
	for i, s := range samples {
		design.Set(i, 0, float64(s.M)*float64(s.K)*float64(s.N))
		design.Set(i, 1, float64(s.M)*float64(s.K)+float64(s.K)*float64(s.N)+float64(s.M)*float64(s.N))
		design.Set(i, 2, 1)
		rhs.Set(i, 0, s.Seconds)
	}
	f, err := qr.Factor(design, nil)
	if err != nil {
		return Model{}, err
	}
	x, err := f.LeastSquares(rhs)
	if err != nil {
		return Model{}, err
	}
	mo := Model{C3: x.At(0, 0), C2: x.At(1, 0), C0: x.At(2, 0)}

	// R² against the sample mean.
	var mean float64
	for _, s := range samples {
		mean += s.Seconds
	}
	mean /= float64(rows)
	var ssRes, ssTot float64
	for _, s := range samples {
		r := s.Seconds - mo.Predict(s.M, s.K, s.N)
		ssRes += r * r
		d := s.Seconds - mean
		ssTot += d * d
	}
	if ssTot > 0 {
		mo.R2 = 1 - ssRes/ssTot
	} else {
		mo.R2 = 1
	}
	return mo, nil
}

// CollectGemm times plain DGEMM on the given square orders and returns
// samples for fitting.
func CollectGemm(kern blas.Kernel, orders []int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sample, 0, len(orders))
	for _, m := range orders {
		a := matrix.NewRandom(m, m, rng)
		b := matrix.NewRandom(m, m, rng)
		c := matrix.NewDense(m, m)
		s := bench.BestOf(2, func() {
			blas.DgemmKernel(kern, blas.NoTrans, blas.NoTrans, m, m, m, 1,
				a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
		})
		out = append(out, Sample{M: m, K: m, N: m, Seconds: s})
	}
	return out
}

// CollectOneLevel times one-level DGEFMM on the given square orders.
func CollectOneLevel(kern blas.Kernel, orders []int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	cfg := &strassen.Config{Kernel: kern, Criterion: strassen.Always{}, MaxDepth: 1, Tracker: memtrack.New()}
	out := make([]Sample, 0, len(orders))
	for _, m := range orders {
		a := matrix.NewRandom(m, m, rng)
		b := matrix.NewRandom(m, m, rng)
		c := matrix.NewDense(m, m)
		s := bench.BestOf(2, func() {
			strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1,
				a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
		})
		out = append(out, Sample{M: m, K: m, N: m, Seconds: s})
	}
	return out
}

// PredictSquareCrossover scans orders in [lo, hi] and returns the smallest
// order from which the oneLevel model stays at or below the gemm model —
// the model-predicted τ+1. Returns hi+1 if one level never wins.
func PredictSquareCrossover(gemm, oneLevel Model, lo, hi int) int {
	cross := hi + 1
	for m := hi; m >= lo; m-- {
		if oneLevel.Predict(m, m, m) <= gemm.Predict(m, m, m) {
			cross = m
		} else {
			break
		}
	}
	return cross
}

// StrassenOneLevelFromGemm derives a one-level cost model analytically from
// a DGEMM model: 7 half-size multiplies plus 15 half-size quadrant adds
// with per-word cost approximated by the fitted quadratic coefficient,
//
//	t₁(m) = 7·t(m/2) + 15·c₂·(m/2)².
//
// Comparing its crossover with a *directly fitted* one-level model measures
// how much of the crossover the pure model explains (the [14] exercise).
func StrassenOneLevelFromGemm(gemm Model) Model {
	// For square inputs: 7·t(m/2) + 15·c₂·(m/2)²
	//   = 7c₃·m³/8 + (7·3 + 15)·c₂·m²/4 + 7c₀ = (7/8)c₃·m³ + 9c₂·m² + 7c₀.
	// The model's quadratic feature is mk+kn+mn = 3m² for squares, so the
	// fitted-form coefficient is 9c₂/3 = 3c₂.
	return Model{
		C3: gemm.C3 * 7.0 / 8.0,
		C2: gemm.C2 * 3,
		C0: gemm.C0 * 7,
		R2: gemm.R2,
	}
}

// OpCountCrossover is the crossover the pure operation-count model
// predicts: the paper's m = 12 (recursion wins from 13).
func OpCountCrossover() int { return 13 }
