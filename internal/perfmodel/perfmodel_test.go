package perfmodel

import (
	"math"
	"testing"

	"repro/internal/blas"
)

func synthSamples(mo Model, orders []int) []Sample {
	out := make([]Sample, 0, len(orders))
	for _, m := range orders {
		out = append(out, Sample{M: m, K: m, N: m, Seconds: mo.Predict(m, m, m)})
	}
	return out
}

func TestFitRecoversExactModel(t *testing.T) {
	truth := Model{C3: 2.5e-9, C2: 4e-8, C0: 1.2e-6}
	samples := synthSamples(truth, []int{16, 24, 32, 48, 64, 96, 128, 200})
	got, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.C3-truth.C3) / truth.C3; rel > 1e-6 {
		t.Fatalf("C3 = %v, want %v", got.C3, truth.C3)
	}
	if rel := math.Abs(got.C2-truth.C2) / truth.C2; rel > 1e-6 {
		t.Fatalf("C2 = %v, want %v", got.C2, truth.C2)
	}
	if rel := math.Abs(got.C0-truth.C0) / truth.C0; rel > 1e-4 {
		t.Fatalf("C0 = %v, want %v", got.C0, truth.C0)
	}
	if got.R2 < 0.999999 {
		t.Fatalf("R² = %v on exact data", got.R2)
	}
}

func TestFitRectangularShapes(t *testing.T) {
	truth := Model{C3: 1e-9, C2: 5e-8, C0: 2e-6}
	var samples []Sample
	for _, d := range [][3]int{{10, 20, 30}, {50, 10, 70}, {80, 80, 20}, {33, 44, 55}, {100, 10, 10}, {25, 25, 25}} {
		samples = append(samples, Sample{M: d[0], K: d[1], N: d[2], Seconds: truth.Predict(d[0], d[1], d[2])})
	}
	got, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range [][3]int{{60, 60, 60}, {5, 200, 12}} {
		want := truth.Predict(d[0], d[1], d[2])
		if rel := math.Abs(got.Predict(d[0], d[1], d[2])-want) / want; rel > 1e-6 {
			t.Fatalf("prediction at %v off by %v", d, rel)
		}
	}
}

func TestFitRejectsTooFewSamples(t *testing.T) {
	if _, err := Fit([]Sample{{M: 2, K: 2, N: 2, Seconds: 1}}); err == nil {
		t.Fatal("want error for <3 samples")
	}
}

func TestPredictSquareCrossoverSynthetic(t *testing.T) {
	// gemm: pure cubic; oneLevel: 7/8 cubic + heavy quadratic. Crossover
	// where (1/8)c₃m³ = extra·3m² → m = 24·extra/c₃.
	gemm := Model{C3: 8e-9}
	one := Model{C3: 7e-9, C2: 1e-8} // wins when 1e-9·m³ > 3e-8·m² → m > 30
	cross := PredictSquareCrossover(gemm, one, 2, 500)
	if cross < 29 || cross > 32 {
		t.Fatalf("predicted crossover %d, want ≈ 30–31", cross)
	}
}

func TestPredictSquareCrossoverNeverWins(t *testing.T) {
	gemm := Model{C3: 1e-9}
	one := Model{C3: 2e-9}
	if got := PredictSquareCrossover(gemm, one, 2, 100); got != 101 {
		t.Fatalf("want hi+1 sentinel, got %d", got)
	}
}

func TestStrassenOneLevelFromGemmCrossover(t *testing.T) {
	// With a plausible compute/traffic ratio the derived one-level model
	// must give a crossover above the op-count 12 — the [14]/Section 3.4
	// point that real cutoffs exceed the op-count prediction.
	gemm := Model{C3: 1e-9, C2: 2e-9}
	one := StrassenOneLevelFromGemm(gemm)
	if one.C3 >= gemm.C3 {
		t.Fatal("one level must reduce the cubic coefficient by 7/8")
	}
	if one.C2 <= gemm.C2 {
		t.Fatal("one level must increase the quadratic (traffic) coefficient")
	}
	cross := PredictSquareCrossover(gemm, one, 2, 4096)
	if cross <= OpCountCrossover() {
		t.Fatalf("model crossover %d should exceed the op-count crossover %d", cross, OpCountCrossover())
	}
	// Analytic check: equality at (1/8)c₃m³ = 6c₂m² → m = 48c₂/c₃ = 96.
	if cross < 90 || cross > 103 {
		t.Fatalf("crossover %d, want ≈ 96", cross)
	}
}

func TestCollectAndFitEndToEnd(t *testing.T) {
	// Real measurements on the naive kernel: the fit must be sane
	// (positive cubic term, decent R²) and the predicted crossover finite.
	// Wall-clock measurements on a shared host occasionally produce a
	// garbage sample (GC pause, scheduler), so allow a few attempts — the
	// property under test is that clean measurements fit the model, not
	// that the host never hiccups.
	kern := blas.NaiveKernel{}
	orders := []int{16, 24, 32, 48, 64, 80, 96}
	var gemm, one Model
	ok := false
	for attempt := int64(0); attempt < 3 && !ok; attempt++ {
		var err error
		gemm, err = Fit(CollectGemm(kern, orders, 31+attempt))
		if err != nil {
			t.Fatal(err)
		}
		one, err = Fit(CollectOneLevel(kern, orders, 32+attempt))
		if err != nil {
			t.Fatal(err)
		}
		ok = gemm.C3 > 0 && gemm.R2 > 0.95 && one.C3 > 0
	}
	if !ok {
		t.Fatalf("no clean fit in 3 attempts: gemm %v, one-level %v", gemm, one)
	}
	cross := PredictSquareCrossover(gemm, one, 8, 512)
	if cross <= 8 {
		t.Fatalf("degenerate predicted crossover %d", cross)
	}
	t.Logf("gemm: %v", gemm)
	t.Logf("one-level: %v", one)
	t.Logf("model-predicted crossover: %d (op-count predicts %d)", cross, OpCountCrossover())
}
