package matrix

import (
	"math/rand"
	"testing"
)

// opsCase builds a destination (optionally a strided sub-view) and two
// sources (optionally transposed views of strided parents) for kernel tests.
func opsCase(t *testing.T, rng *rand.Rand, r, c int, transA, transB, strided bool) (dst *Dense, a, b View, aRef, bRef *Dense) {
	t.Helper()
	mk := func(trans bool) (View, *Dense) {
		pr, pc := r, c
		if trans {
			pr, pc = c, r
		}
		parent := NewRandom(pr+2, pc+2, rng)
		sub := parent.Slice(1, 1, pr, pc)
		v := View{Rows: pr, Cols: pc, Stride: sub.Stride, Data: sub.Data}
		if trans {
			v = View{Rows: pc, Cols: pr, Stride: sub.Stride, Trans: true, Data: sub.Data}
		}
		return v, v.Dense()
	}
	a, aRef = mk(transA)
	b, bRef = mk(transB)
	if strided {
		parent := NewRandom(r+3, c+3, rng)
		dst = parent.Slice(2, 2, r, c)
	} else {
		dst = NewRandom(r, c, rng)
	}
	return dst, a, b, aRef, bRef
}

func forAllTransCombos(t *testing.T, f func(t *testing.T, ta, tb, strided bool)) {
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			for _, s := range []bool{false, true} {
				f(t, ta, tb, s)
			}
		}
	}
}

func TestAddAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	forAllTransCombos(t, func(t *testing.T, ta, tb, strided bool) {
		dst, a, b, aRef, bRef := opsCase(t, rng, 4, 5, ta, tb, strided)
		Add(dst, a, b)
		for i := 0; i < 4; i++ {
			for j := 0; j < 5; j++ {
				want := aRef.At(i, j) + bRef.At(i, j)
				if dst.At(i, j) != want {
					t.Fatalf("Add ta=%v tb=%v strided=%v wrong at (%d,%d)", ta, tb, strided, i, j)
				}
			}
		}
	})
}

func TestSubAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	forAllTransCombos(t, func(t *testing.T, ta, tb, strided bool) {
		dst, a, b, aRef, bRef := opsCase(t, rng, 5, 4, ta, tb, strided)
		Sub(dst, a, b)
		for i := 0; i < 5; i++ {
			for j := 0; j < 4; j++ {
				want := aRef.At(i, j) - bRef.At(i, j)
				if dst.At(i, j) != want {
					t.Fatalf("Sub wrong ta=%v tb=%v", ta, tb)
				}
			}
		}
	})
}

func TestAddAssignAndSubAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, trans := range []bool{false, true} {
		dst, a, _, aRef, _ := opsCase(t, rng, 3, 6, trans, false, true)
		orig := dst.Clone()
		AddAssign(dst, a)
		for i := 0; i < 3; i++ {
			for j := 0; j < 6; j++ {
				if dst.At(i, j) != orig.At(i, j)+aRef.At(i, j) {
					t.Fatal("AddAssign wrong")
				}
			}
		}
		SubAssign(dst, a)
		if !dst.EqualApprox(orig, 1e-15) {
			t.Fatal("SubAssign should undo AddAssign")
		}
	}
}

func TestRevSubAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, trans := range []bool{false, true} {
		dst, a, _, aRef, _ := opsCase(t, rng, 4, 4, trans, false, false)
		orig := dst.Clone()
		RevSubAssign(dst, a)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if dst.At(i, j) != aRef.At(i, j)-orig.At(i, j) {
					t.Fatal("RevSubAssign wrong")
				}
			}
		}
	}
}

func TestAxpby(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, trans := range []bool{false, true} {
		for _, ab := range [][2]float64{{1, 1}, {2, 0}, {-0.5, 3}, {0, 2}, {1, 0}} {
			alpha, beta := ab[0], ab[1]
			dst, x, _, xRef, _ := opsCase(t, rng, 3, 3, trans, false, true)
			orig := dst.Clone()
			Axpby(dst, alpha, x, beta)
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					want := alpha*xRef.At(i, j) + beta*orig.At(i, j)
					if diff := dst.At(i, j) - want; diff > 1e-15 || diff < -1e-15 {
						t.Fatalf("Axpby(%v,%v) trans=%v wrong", alpha, beta, trans)
					}
				}
			}
		}
	}
}

func TestCopyScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, trans := range []bool{false, true} {
		dst, x, _, xRef, _ := opsCase(t, rng, 2, 5, trans, false, false)
		CopyScaled(dst, -2, x)
		for i := 0; i < 2; i++ {
			for j := 0; j < 5; j++ {
				if dst.At(i, j) != -2*xRef.At(i, j) {
					t.Fatal("CopyScaled wrong")
				}
			}
		}
	}
}

func TestAddSubAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	forAllTransCombos(t, func(t *testing.T, ta, tb, strided bool) {
		dst, x, y, xRef, yRef := opsCase(t, rng, 4, 3, ta, tb, strided)
		orig := dst.Clone()
		AddSubAssign(dst, x, y)
		for i := 0; i < 4; i++ {
			for j := 0; j < 3; j++ {
				want := xRef.At(i, j) - yRef.At(i, j) - orig.At(i, j)
				if dst.At(i, j) != want {
					t.Fatal("AddSubAssign wrong")
				}
			}
		}
	})
}

func TestOpsShapeMismatchPanics(t *testing.T) {
	a := ViewOf(NewDense(2, 3))
	b := ViewOf(NewDense(3, 2))
	dst := NewDense(2, 3)
	for name, f := range map[string]func(){
		"Add":          func() { Add(dst, a, b) },
		"Sub":          func() { Sub(dst, a, b) },
		"AddAssign":    func() { AddAssign(dst, b) },
		"SubAssign":    func() { SubAssign(dst, b) },
		"RevSubAssign": func() { RevSubAssign(dst, b) },
		"Axpby":        func() { Axpby(dst, 1, b, 1) },
		"CopyScaled":   func() { CopyScaled(dst, 1, b) },
		"AddSubAssign": func() { AddSubAssign(dst, a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want shape panic", name)
				}
			}()
			f()
		}()
	}
}

func TestViewSliceTransposed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewRandom(6, 8, rng)
	v := ViewOp(m, true) // logical 8×6
	if v.Rows != 8 || v.Cols != 6 {
		t.Fatal("ViewOp shape")
	}
	sub := v.Slice(2, 1, 3, 4) // rows 2..4, cols 1..4 of mᵀ
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if sub.At(i, j) != m.At(1+j, 2+i) {
				t.Fatalf("transposed subview wrong at (%d,%d)", i, j)
			}
		}
	}
	d := sub.Dense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if d.At(i, j) != sub.At(i, j) {
				t.Fatal("Materialize wrong")
			}
		}
	}
}

func TestViewSliceUntransposedAliases(t *testing.T) {
	m := NewDense(4, 4)
	v := ViewOf(m)
	sub := v.Slice(1, 1, 2, 2)
	m.Set(1, 1, 5)
	if sub.At(0, 0) != 5 {
		t.Fatal("view slice must alias")
	}
}

func TestViewSliceOutOfRangePanics(t *testing.T) {
	v := ViewOf(NewDense(3, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	v.Slice(0, 0, 4, 1)
}

func TestNorms(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {-3, 4}})
	if MaxAbs(m) != 4 {
		t.Fatal("MaxAbs")
	}
	if OneNorm(m) != 6 { // max column abs sum: |{-2,4}| = 6? cols: {1,-3}→4, {-2,4}→6
		t.Fatalf("OneNorm = %v", OneNorm(m))
	}
	if InfNorm(m) != 7 { // rows: 3, 7
		t.Fatalf("InfNorm = %v", InfNorm(m))
	}
	f := FrobeniusNorm(m)
	if d := f*f - 30; d > 1e-12 || d < -1e-12 {
		t.Fatalf("Frobenius² = %v, want 30", f*f)
	}
	other := FromRows([][]float64{{1, -2}, {-3, 3}})
	if MaxAbsDiff(m, other) != 1 {
		t.Fatal("MaxAbsDiff")
	}
}

func TestFrobeniusNoOverflow(t *testing.T) {
	m := NewDense(2, 1)
	m.Set(0, 0, 1e200)
	m.Set(1, 0, 1e200)
	got := FrobeniusNorm(m)
	want := 1e200 * 1.4142135623730951
	if rel := (got - want) / want; rel > 1e-12 || rel < -1e-12 {
		t.Fatalf("overflow-guarded norm wrong: %v", got)
	}
}
