package matrix

import "fmt"

// This file contains the elementwise "G operations" of the paper's cost model
// (matrix add/subtract/scale-accumulate). They are the stage (1), (2) and (4)
// kernels of the Winograd schedules. Each accepts transpose-aware Views as
// sources so that DGEFMM's transposed-input cases need no extra storage.

func checkSameShape(op string, r, c int, vs ...View) {
	for _, v := range vs {
		if v.Rows != r || v.Cols != c {
			panic(fmt.Sprintf("matrix: %s shape mismatch: want %dx%d, got %dx%d", op, r, c, v.Rows, v.Cols))
		}
	}
}

// Add computes dst = a + b.
func Add(dst *Dense, a, b View) {
	checkSameShape("Add", dst.Rows, dst.Cols, a, b)
	if !a.Trans && !b.Trans {
		for j := 0; j < dst.Cols; j++ {
			d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			av := a.Data[j*a.Stride : j*a.Stride+dst.Rows]
			bv := b.Data[j*b.Stride : j*b.Stride+dst.Rows]
			for i := range d {
				d[i] = av[i] + bv[i]
			}
		}
		return
	}
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		for i := range d {
			d[i] = a.At(i, j) + b.At(i, j)
		}
	}
}

// Sub computes dst = a - b.
func Sub(dst *Dense, a, b View) {
	checkSameShape("Sub", dst.Rows, dst.Cols, a, b)
	if !a.Trans && !b.Trans {
		for j := 0; j < dst.Cols; j++ {
			d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			av := a.Data[j*a.Stride : j*a.Stride+dst.Rows]
			bv := b.Data[j*b.Stride : j*b.Stride+dst.Rows]
			for i := range d {
				d[i] = av[i] - bv[i]
			}
		}
		return
	}
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		for i := range d {
			d[i] = a.At(i, j) - b.At(i, j)
		}
	}
}

// AddAssign computes dst += x.
func AddAssign(dst *Dense, x View) {
	checkSameShape("AddAssign", dst.Rows, dst.Cols, x)
	if !x.Trans {
		for j := 0; j < dst.Cols; j++ {
			d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			xv := x.Data[j*x.Stride : j*x.Stride+dst.Rows]
			for i := range d {
				d[i] += xv[i]
			}
		}
		return
	}
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		for i := range d {
			d[i] += x.At(i, j)
		}
	}
}

// SubAssign computes dst -= x.
func SubAssign(dst *Dense, x View) {
	checkSameShape("SubAssign", dst.Rows, dst.Cols, x)
	if !x.Trans {
		for j := 0; j < dst.Cols; j++ {
			d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			xv := x.Data[j*x.Stride : j*x.Stride+dst.Rows]
			for i := range d {
				d[i] -= xv[i]
			}
		}
		return
	}
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		for i := range d {
			d[i] -= x.At(i, j)
		}
	}
}

// RevSubAssign computes dst = x - dst.
func RevSubAssign(dst *Dense, x View) {
	checkSameShape("RevSubAssign", dst.Rows, dst.Cols, x)
	if !x.Trans {
		for j := 0; j < dst.Cols; j++ {
			d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			xv := x.Data[j*x.Stride : j*x.Stride+dst.Rows]
			for i := range d {
				d[i] = xv[i] - d[i]
			}
		}
		return
	}
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		for i := range d {
			d[i] = x.At(i, j) - d[i]
		}
	}
}

// Axpby computes dst = alpha*x + beta*dst. It is the quadrant scale/update
// kernel of STRASSEN2 (e.g. C12 ← β·C12 + R3).
func Axpby(dst *Dense, alpha float64, x View, beta float64) {
	checkSameShape("Axpby", dst.Rows, dst.Cols, x)
	switch {
	case !x.Trans && beta == 1 && alpha == 1:
		AddAssign(dst, x)
	case !x.Trans:
		for j := 0; j < dst.Cols; j++ {
			d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			xv := x.Data[j*x.Stride : j*x.Stride+dst.Rows]
			for i := range d {
				d[i] = alpha*xv[i] + beta*d[i]
			}
		}
	default:
		for j := 0; j < dst.Cols; j++ {
			d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			for i := range d {
				d[i] = alpha*x.At(i, j) + beta*d[i]
			}
		}
	}
}

// CopyScaled computes dst = alpha*x.
func CopyScaled(dst *Dense, alpha float64, x View) {
	checkSameShape("CopyScaled", dst.Rows, dst.Cols, x)
	if !x.Trans {
		for j := 0; j < dst.Cols; j++ {
			d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			xv := x.Data[j*x.Stride : j*x.Stride+dst.Rows]
			for i := range d {
				d[i] = alpha * xv[i]
			}
		}
		return
	}
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		for i := range d {
			d[i] = alpha * x.At(i, j)
		}
	}
}

// AddSubAssign computes dst = x - y - dst in one pass. It implements the
// STRASSEN1 tail step C21 ← C22 − C21 − C11 without an extra temporary.
func AddSubAssign(dst *Dense, x, y View) {
	checkSameShape("AddSubAssign", dst.Rows, dst.Cols, x, y)
	if !x.Trans && !y.Trans {
		for j := 0; j < dst.Cols; j++ {
			d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
			xv := x.Data[j*x.Stride : j*x.Stride+dst.Rows]
			yv := y.Data[j*y.Stride : j*y.Stride+dst.Rows]
			for i := range d {
				d[i] = xv[i] - yv[i] - d[i]
			}
		}
		return
	}
	for j := 0; j < dst.Cols; j++ {
		d := dst.Data[j*dst.Stride : j*dst.Stride+dst.Rows]
		for i := range d {
			d[i] = x.At(i, j) - y.At(i, j) - d[i]
		}
	}
}
