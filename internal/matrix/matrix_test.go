package matrix

import (
	"math/rand"
	"testing"
)

func TestNewDenseShape(t *testing.T) {
	m := NewDense(3, 5)
	if m.Rows != 3 || m.Cols != 5 || m.Stride != 3 || len(m.Data) != 15 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestNewDenseEmpty(t *testing.T) {
	m := NewDense(0, 4)
	if m.Rows != 0 || m.Cols != 4 || m.Stride != 1 {
		t.Fatalf("unexpected: %+v", m)
	}
	n := NewDense(0, 0)
	if n.Stride != 1 {
		t.Fatalf("stride should clamp to 1, got %d", n.Stride)
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDense(-1, 2)
}

func TestAtSetColumnMajor(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 42)
	if m.Data[1+2*m.Stride] != 42 {
		t.Fatal("Set did not write column-major location")
	}
	if m.At(1, 2) != 42 {
		t.Fatal("At did not read back")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, 2) },
		func() { m.At(-1, 0) },
		func() { m.Set(0, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestFromColMajorValidation(t *testing.T) {
	data := make([]float64, 10)
	m := FromColMajor(2, 3, 3, data) // needs (3-1)*3+2 = 8 ≤ 10
	if m.At(1, 2) != data[1+2*3] {
		t.Fatal("aliasing broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for short data")
		}
	}()
	FromColMajor(4, 3, 4, make([]float64, 5))
}

func TestFromColMajorBadLD(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for ld < rows")
		}
	}()
	FromColMajor(4, 2, 3, make([]float64, 100))
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatal("shape")
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 || m.At(0, 2) != 3 {
		t.Fatal("values wrong")
	}
}

func TestSliceAliases(t *testing.T) {
	m := NewDense(6, 6)
	s := m.Slice(2, 3, 2, 2)
	s.Set(0, 0, 9)
	if m.At(2, 3) != 9 {
		t.Fatal("slice must alias parent")
	}
	if s.Stride != m.Stride {
		t.Fatal("slice stride must equal parent stride")
	}
	// nested slicing
	s2 := s.Slice(1, 1, 1, 1)
	s2.Set(0, 0, 7)
	if m.At(3, 4) != 7 {
		t.Fatal("nested slice aliasing broken")
	}
}

func TestSliceBounds(t *testing.T) {
	m := NewDense(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.Slice(1, 1, 4, 1)
}

func TestSliceEmpty(t *testing.T) {
	m := NewDense(4, 4)
	s := m.Slice(2, 2, 0, 2)
	if s.Rows != 0 || s.Cols != 2 {
		t.Fatal("empty slice shape")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("clone not independent")
	}
	if c.Stride != 2 {
		t.Fatal("clone should be tightly packed")
	}
}

func TestCopyFromStrided(t *testing.T) {
	big := NewDense(5, 5)
	rng := rand.New(rand.NewSource(1))
	Random(big, rng)
	sub := big.Slice(1, 1, 3, 3)
	dst := NewDense(3, 3)
	dst.CopyFrom(sub)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if dst.At(i, j) != big.At(i+1, j+1) {
				t.Fatal("CopyFrom wrong")
			}
		}
	}
}

func TestZeroRespectsView(t *testing.T) {
	big := NewDense(4, 4)
	big.Fill(1)
	big.Slice(1, 1, 2, 2).Zero()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			inside := i >= 1 && i <= 2 && j >= 1 && j <= 2
			want := 1.0
			if inside {
				want = 0
			}
			if big.At(i, j) != want {
				t.Fatalf("Zero leaked at (%d,%d)", i, j)
			}
		}
	}
}

func TestScale(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {3, 4}})
	m.Scale(-0.5)
	want := FromRows([][]float64{{-0.5, 1}, {-1.5, -2}})
	if !m.Equal(want) {
		t.Fatalf("got %v", m)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatal("shape")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatal("transpose wrong")
			}
		}
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{1.0001, 2}})
	if !a.EqualApprox(b, 1e-3) {
		t.Fatal("should be approx equal")
	}
	if a.EqualApprox(b, 1e-6) {
		t.Fatal("should differ at tight tol")
	}
	c := FromRows([][]float64{{1, 2, 3}})
	if a.EqualApprox(c, 1) {
		t.Fatal("shape mismatch must be unequal")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatal("identity wrong")
			}
		}
	}
}

func TestRandomSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewRandomSymmetric(8, rng)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatal("not symmetric")
			}
		}
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	small := NewDense(2, 2)
	_ = small.String()
	big := NewDense(40, 40)
	_ = big.String()
}
