package matrix

import "math/rand"

// Random fills m with independent uniform values in [-1, 1) drawn from rng,
// mirroring the randomly-generated test matrices of the paper's Section 4.
func Random(m *Dense, rng *rand.Rand) {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] = 2*rng.Float64() - 1
		}
	}
}

// NewRandom allocates an r×c matrix with uniform [-1, 1) entries.
func NewRandom(r, c int, rng *rand.Rand) *Dense {
	m := NewDense(r, c)
	Random(m, rng)
	return m
}

// RandomSymmetric fills m (square) with a random symmetric matrix, used by the
// eigensolver experiment (Table 6 uses a randomly-generated symmetric input).
func RandomSymmetric(m *Dense, rng *rand.Rand) {
	if m.Rows != m.Cols {
		panic("matrix: RandomSymmetric requires a square matrix")
	}
	for j := 0; j < m.Cols; j++ {
		for i := 0; i <= j; i++ {
			v := 2*rng.Float64() - 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// NewRandomSymmetric allocates an n×n random symmetric matrix.
func NewRandomSymmetric(n int, rng *rand.Rand) *Dense {
	m := NewDense(n, n)
	RandomSymmetric(m, rng)
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
