package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText writes m in a simple whitespace text format: one row per line,
// entries formatted with %.17g so a read-back is bit-exact.
func WriteText(w io.Writer, m *Dense) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%.17g", m.At(i, j)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the WriteText format: each non-empty line is a row of
// whitespace-separated float64 values; all rows must have the same length.
func ReadText(r io.Reader) (*Dense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var rows [][]float64
	cols := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("matrix: line %d has %d entries, want %d", line, len(fields), cols)
		}
		row := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: line %d entry %d: %v", line, j+1, err)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("matrix: empty input")
	}
	return FromRows(rows), nil
}
