package matrix

import "math"

// MaxAbs returns max |m(i,j)|, the max norm used in forward-error checks.
func MaxAbs(m *Dense) float64 {
	var mx float64
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for _, v := range col {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// MaxAbsDiff returns max |a(i,j) - b(i,j)|; shapes must match.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("matrix: MaxAbsDiff shape mismatch")
	}
	var mx float64
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			d := math.Abs(a.Data[i+j*a.Stride] - b.Data[i+j*b.Stride])
			if d > mx {
				mx = d
			}
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(sum m(i,j)^2) with scaling to avoid overflow.
func FrobeniusNorm(m *Dense) float64 {
	scale, ssq := 0.0, 1.0
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for _, v := range col {
			if v == 0 {
				continue
			}
			a := math.Abs(v)
			if scale < a {
				r := scale / a
				ssq = 1 + ssq*r*r
				scale = a
			} else {
				r := a / scale
				ssq += r * r
			}
		}
	}
	return scale * math.Sqrt(ssq)
}

// OneNorm returns the maximum absolute column sum.
func OneNorm(m *Dense) float64 {
	var mx float64
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		var s float64
		for _, v := range col {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// InfNorm returns the maximum absolute row sum.
func InfNorm(m *Dense) float64 {
	sums := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i, v := range col {
			sums[i] += math.Abs(v)
		}
	}
	var mx float64
	for _, s := range sums {
		if s > mx {
			mx = s
		}
	}
	return mx
}
