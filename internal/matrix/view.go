package matrix

import "fmt"

// View is a read-only operand view of a stored matrix, optionally transposed.
// It represents op(X) where op is the identity or transpose, without copying:
// Rows and Cols are the *logical* dimensions of op(X). All Strassen quadrant
// bookkeeping (including the transposed input cases of DGEMM) is expressed
// through Views, so transposition costs no memory.
type View struct {
	Rows, Cols int
	Stride     int
	Trans      bool
	Data       []float64
}

// ViewOf wraps m (untransposed).
func ViewOf(m *Dense) View {
	return View{Rows: m.Rows, Cols: m.Cols, Stride: m.Stride, Data: m.Data}
}

// ViewOp wraps m as op(m): trans=false gives m, trans=true gives mᵀ.
func ViewOp(m *Dense, trans bool) View {
	if trans {
		return View{Rows: m.Cols, Cols: m.Rows, Stride: m.Stride, Trans: true, Data: m.Data}
	}
	return ViewOf(m)
}

// At returns logical element (i, j) of op(X).
func (v View) At(i, j int) float64 {
	if v.Trans {
		i, j = j, i
	}
	return v.Data[i+j*v.Stride]
}

// Slice returns the logical r×c subview with top-left corner (i, j) of op(X).
// For a transposed view this maps to the transposed region of the underlying
// storage, which is what makes quadrant views of op(A) free.
func (v View) Slice(i, j, r, c int) View {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > v.Rows || j+c > v.Cols {
		panic(fmt.Sprintf("matrix: View.Slice(%d,%d,%d,%d) out of range %dx%d", i, j, r, c, v.Rows, v.Cols))
	}
	si, sj, sr, sc := i, j, r, c
	if v.Trans {
		si, sj, sr, sc = j, i, c, r
	}
	out := View{Rows: r, Cols: c, Stride: v.Stride, Trans: v.Trans}
	if r == 0 || c == 0 {
		return out
	}
	off := si + sj*v.Stride
	end := off + (sc-1)*v.Stride + sr
	out.Data = v.Data[off:end]
	return out
}

// Materialize copies op(X) into dst (shape must match logical dims).
func (v View) Materialize(dst *Dense) {
	if dst.Rows != v.Rows || dst.Cols != v.Cols {
		panic(fmt.Sprintf("matrix: Materialize shape mismatch: %dx%d vs %dx%d", dst.Rows, dst.Cols, v.Rows, v.Cols))
	}
	if !v.Trans {
		for j := 0; j < v.Cols; j++ {
			copy(dst.Data[j*dst.Stride:j*dst.Stride+v.Rows], v.Data[j*v.Stride:j*v.Stride+v.Rows])
		}
		return
	}
	for j := 0; j < v.Cols; j++ {
		dcol := dst.Data[j*dst.Stride : j*dst.Stride+v.Rows]
		for i := range dcol {
			dcol[i] = v.Data[j+i*v.Stride]
		}
	}
}

// Dense materializes op(X) into a freshly allocated Dense.
func (v View) Dense() *Dense {
	out := NewDense(v.Rows, v.Cols)
	v.Materialize(out)
	return out
}
