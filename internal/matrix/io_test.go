package matrix

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewRandom(7, 5, rng)
	var sb strings.Builder
	if err := WriteText(&sb, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("round trip not bit-exact")
	}
}

func TestTextRoundTripSpecialValues(t *testing.T) {
	m := FromRows([][]float64{
		{0, -0, 1e-300},
		{1e300, math.Pi, -2.5},
	})
	var sb strings.Builder
	if err := WriteText(&sb, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("special values lost")
	}
}

func TestReadTextSkipsBlankLines(t *testing.T) {
	in := "1 2\n\n3 4\n   \n"
	m, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.At(1, 1) != 4 {
		t.Fatalf("parsed %v", m)
	}
}

func TestReadTextErrors(t *testing.T) {
	for name, in := range map[string]string{
		"ragged":    "1 2\n3\n",
		"non-float": "1 x\n",
		"empty":     "",
	} {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteTextStridedView(t *testing.T) {
	big := NewDense(5, 5)
	for j := 0; j < 5; j++ {
		for i := 0; i < 5; i++ {
			big.Set(i, j, float64(10*i+j))
		}
	}
	sub := big.Slice(1, 1, 2, 3)
	var sb strings.Builder
	if err := WriteText(&sb, sub); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if back.At(i, j) != sub.At(i, j) {
				t.Fatal("strided view written wrong")
			}
		}
	}
}
