// Package matrix provides column-major dense matrices with explicit leading
// dimensions, matching the storage convention of the Level 3 BLAS (and of the
// paper's C implementation, which stores matrices FORTRAN-style to ease the
// BLAS interface). All Strassen quadrant arithmetic in internal/strassen is
// expressed over the view types defined here.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is an m×n column-major matrix: element (i,j) lives at Data[i+j*Stride].
// Stride (the leading dimension, "ld" in BLAS terms) must be >= max(1, Rows),
// which permits a Dense to alias a contiguous block of columns of a larger
// matrix without copying.
type Dense struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewDense allocates a zeroed r×c matrix with a tight stride.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: NewDense(%d, %d): negative dimension", r, c))
	}
	return &Dense{Rows: r, Cols: c, Stride: max(1, r), Data: make([]float64, r*c)}
}

// FromColMajor wraps existing column-major data without copying.
// len(data) must be at least (c-1)*ld + r for nonempty matrices.
func FromColMajor(r, c, ld int, data []float64) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: FromColMajor(%d, %d): negative dimension", r, c))
	}
	if ld < max(1, r) {
		panic(fmt.Sprintf("matrix: FromColMajor: ld=%d < rows=%d", ld, r))
	}
	if r > 0 && c > 0 && len(data) < (c-1)*ld+r {
		panic(fmt.Sprintf("matrix: FromColMajor: data length %d too short for %dx%d ld=%d", len(data), r, c, ld))
	}
	return &Dense{Rows: r, Cols: c, Stride: ld, Data: data}
}

// FromRows builds a matrix from row-major [][]float64 literals; handy in tests.
func FromRows(rows [][]float64) *Dense {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("matrix: FromRows: ragged rows")
		}
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: At(%d, %d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	return m.Data[i+j*m.Stride]
}

// Set writes element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: Set(%d, %d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	m.Data[i+j*m.Stride] = v
}

// Slice returns a view (no copy) of the r×c submatrix whose top-left corner
// is (i, j). Mutations through the view are visible in m.
func (m *Dense) Slice(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("matrix: Slice(%d,%d,%d,%d) out of range %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	if r == 0 || c == 0 {
		return &Dense{Rows: r, Cols: c, Stride: m.Stride}
	}
	off := i + j*m.Stride
	// Keep capacity limited to the addressable region.
	end := off + (c-1)*m.Stride + r
	return &Dense{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[off:end]}
}

// Clone returns a tightly-packed deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src into m elementwise. Shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("matrix: CopyFrom shape mismatch: %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Data[j*m.Stride:j*m.Stride+m.Rows], src.Data[j*src.Stride:j*src.Stride+src.Rows])
	}
}

// Zero sets all elements of m to zero (respecting the stride: only the view's
// own elements are cleared).
func (m *Dense) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] = 0
		}
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] = v
		}
	}
}

// Scale multiplies every element by alpha in place.
func (m *Dense) Scale(alpha float64) {
	for j := 0; j < m.Cols; j++ {
		col := m.Data[j*m.Stride : j*m.Stride+m.Rows]
		for i := range col {
			col[i] *= alpha
		}
	}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			out.Data[j+i*out.Stride] = m.Data[i+j*m.Stride]
		}
	}
	return out
}

// Equal reports exact elementwise equality of shape and values.
func (m *Dense) Equal(other *Dense) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if m.Data[i+j*m.Stride] != other.Data[i+j*other.Stride] {
				return false
			}
		}
	}
	return true
}

// EqualApprox reports elementwise |a-b| <= tol equality.
func (m *Dense) EqualApprox(other *Dense, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			d := m.Data[i+j*m.Stride] - other.Data[i+j*other.Stride]
			if math.Abs(d) > tol || math.IsNaN(d) {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging; large ones are elided.
func (m *Dense) String() string {
	const limit = 12
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d ld=%d\n", m.Rows, m.Cols, m.Stride)
	r, c := m.Rows, m.Cols
	if r > limit {
		r = limit
	}
	if c > limit {
		c = limit
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			fmt.Fprintf(&sb, "% 10.4g ", m.At(i, j))
		}
		if c < m.Cols {
			sb.WriteString("...")
		}
		sb.WriteByte('\n')
	}
	if r < m.Rows {
		sb.WriteString("...\n")
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
