// Package repro is an open-source Go reproduction of Huss-Lederman,
// Jacobson, Johnson, Tsao and Turnbull, "Implementation of Strassen's
// Algorithm for Matrix Multiplication" (Supercomputing 1996).
//
// The headline export is DGEFMM, a drop-in replacement for the Level 3 BLAS
// DGEMM (C ← α·op(A)·op(B) + β·C) built on the Winograd variant of
// Strassen's algorithm with:
//
//   - minimal temporary memory: (m·max(k,n)+kn)/3 when β = 0 and
//     (mk+kn+mn)/3 in general — 2m²/3 and m² for square inputs (Table 1);
//   - dynamic peeling for odd dimensions with DGER/DGEMV fixups;
//   - the paper's parameterized hybrid cutoff criterion (15), calibrated
//     empirically per machine/kernel.
//
// The package also exposes the supporting systems the paper's evaluation
// needs: a reference BLAS subset whose three classic DGEMM kernels stand in
// for the paper's three machines (plus the packed cache-blocked kernel of
// internal/kernel, the default), the comparison codes DGEMMS/SGEMMS/DGEMMW,
// cutoff calibration, and an ISDA symmetric eigensolver whose kernel
// operation is matrix multiplication (Section 4.4).
//
// Quick start:
//
//	a := repro.NewRandomMatrix(500, 500, rng)
//	b := repro.NewRandomMatrix(500, 500, rng)
//	c := repro.NewMatrix(500, 500)
//	repro.Multiply(nil, c, repro.NoTrans, repro.NoTrans, 1, a, b, 0)
package repro

import (
	"math/rand"
	"net/http"

	"repro/internal/algo"
	"repro/internal/baselines"
	"repro/internal/batch"
	"repro/internal/blas"
	"repro/internal/cutoff"
	"repro/internal/eigen"
	"repro/internal/fastlevel3"
	"repro/internal/kernel"
	"repro/internal/linsolve"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/obs"
	"repro/internal/outofcore"
	"repro/internal/qr"
	"repro/internal/serve"
	"repro/internal/strassen"
	"repro/internal/zgemm"
)

// Matrix is a column-major dense matrix with an explicit leading dimension
// (stride), the storage convention of the BLAS and of the paper's code.
type Matrix = matrix.Dense

// Transpose selects op(X) = X or Xᵀ in the Level 3 interfaces.
type Transpose = blas.Transpose

// Transposition selectors.
const (
	// NoTrans selects op(X) = X.
	NoTrans = blas.NoTrans
	// Trans selects op(X) = Xᵀ.
	Trans = blas.Trans
)

// Config selects DGEFMM's kernel, cutoff criterion, computation schedule and
// odd-dimension strategy; see the strassen package for the full story. A
// nil *Config everywhere means "the paper's DGEFMM defaults".
type Config = strassen.Config

// Params holds empirically calibrated cutoff parameters (τ, τm, τk, τn) for
// one machine/kernel — the quantities of the paper's Tables 2 and 3.
type Params = strassen.Params

// Criterion is the recursion cutoff test interface (paper Section 3.4).
type Criterion = strassen.Criterion

// FusedMode selects whether DGEFMM may run its last recursion levels
// through the kernel's fused packing/write-out hooks (Config.Fused).
type FusedMode = strassen.FusedMode

// The fused-driver modes: auto-detect (default), force on, force off.
// DGEFMM_FUSED=auto|on|off overrides FusedAuto per process.
const (
	FusedAuto = strassen.FusedAuto
	FusedOn   = strassen.FusedOn
	FusedOff  = strassen.FusedOff
)

// ParseFusedMode parses a -fused style flag value (auto|on|off).
func ParseFusedMode(s string) (FusedMode, error) { return strassen.ParseFusedMode(s) }

// AlgoTable is one ⟨m,k,n⟩ fast matrix-multiplication algorithm as a
// (U, V, W) coefficient table with R products, verified against the Brent
// equations on construction. Set Config.Algo to a registered table's name
// (or AlgoAuto) to drive DGEFMM's recursion with it; leave it empty for
// the default hand-tuned Winograd path. DGEFMM_ALGO=name|auto overrides
// the default per process; an explicit Config.Algo wins over it.
type AlgoTable = algo.Table

// AlgoAuto selects a table per call shape: the registered table whose
// split ratios best match the operand aspect.
const AlgoAuto = strassen.AlgoAuto

// NewAlgoTable builds and verifies a coefficient table (see algo.New):
// u, v, w have m·k, k·n and m·n rows respectively and R columns each.
// Tables failing the Brent equations are rejected.
func NewAlgoTable(name string, m, k, n int, u, v, w [][]float64) (*AlgoTable, error) {
	return algo.New(name, m, k, n, u, v, w)
}

// RegisterAlgo adds a verified table to the registry, making it selectable
// by name through Config.Algo, DGEFMM_ALGO and AlgoAuto.
func RegisterAlgo(t *AlgoTable) error { return algo.Register(t) }

// AlgoByName looks up a registered table.
func AlgoByName(name string) (*AlgoTable, bool) { return algo.ByName(name) }

// AlgoTables returns the registered tables in registration order.
func AlgoTables() []*AlgoTable { return algo.Tables() }

// SelectAlgo returns the registered table auto-selection would pick for an
// m×k · k×n product (what Config.Algo = AlgoAuto resolves to).
func SelectAlgo(m, k, n int) *AlgoTable { return algo.Select(m, k, n) }

// ParseAlgo validates a -algo style flag value: "auto", "default"/"", or a
// registered table name.
func ParseAlgo(s string) (string, error) { return strassen.ParseAlgo(s) }

// The paper's cutoff criteria, re-exported for configuration.
type (
	// TheoreticalCriterion is inequality (7) from the op-count model.
	TheoreticalCriterion = strassen.Theoretical
	// SimpleCriterion is condition (11): stop when any dimension ≤ τ.
	SimpleCriterion = strassen.Simple
	// ScaledCriterion is Higham's condition (12).
	ScaledCriterion = strassen.Scaled
	// HybridCriterion is the paper's new condition (15).
	HybridCriterion = strassen.Hybrid
)

// MemoryTracker accounts temporary workspace words (used for Table 1).
type MemoryTracker = memtrack.Tracker

// NewMemoryTracker returns an empty workspace accountant.
func NewMemoryTracker() *MemoryTracker { return memtrack.New() }

// MemoryStats is an immutable snapshot of a MemoryTracker's accounting
// (live and peak words, fresh allocations, free-list reuses).
type MemoryStats = memtrack.Stats

// Collector is the observability hub for DGEFMM: attach one to a Config
// (see ObservedConfig) and every call records named metrics — per-action
// event counters, log-scale span-latency histograms, workspace and
// goroutine accounting — plus a timed span tree of the recursion with
// per-node wall time and derived GFLOPS, exportable as JSON and as Chrome
// trace-event files loadable in Perfetto. With no collector attached the
// tracing fast path is a nil check; overhead is unmeasurable.
type Collector = obs.Collector

// NewCollector returns an empty metrics registry + span recorder pair.
func NewCollector() *Collector { return obs.NewCollector() }

// StatsSnapshot is the immutable statistics struct a Collector produces:
// metric values, aggregated workspace accounting, parallel-kernel dispatch
// counts and a span-tree summary, all captured at one instant.
type StatsSnapshot = obs.Snapshot

// ObservedConfig returns the paper's DGEFMM configuration for a kernel
// with the collector attached: c records every recursion event, span and
// workspace figure for calls made under the returned config. Equivalent to
// c.Attach(DefaultConfig(kern)).
func ObservedConfig(kern blas.Kernel, c *Collector) *Config {
	return c.Attach(DefaultConfig(kern))
}

// StartDebugServer serves live observability over HTTP in the background:
// expvar under /debug/vars, pprof profiling under /debug/pprof/, the
// collector's snapshot as JSON under /metrics and its Chrome trace under
// /trace. It returns the running server (stop with Close) and the bound
// address. Pass port ":0" to let the OS choose.
func StartDebugServer(addr string, c *Collector) (*http.Server, string, error) {
	return obs.StartDebugServer(addr, c)
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix { return matrix.NewDense(r, c) }

// NewRandomMatrix allocates an r×c matrix with uniform [-1, 1) entries.
func NewRandomMatrix(r, c int, rng *rand.Rand) *Matrix { return matrix.NewRandom(r, c, rng) }

// NewRandomSymmetric allocates an n×n random symmetric matrix.
func NewRandomSymmetric(n int, rng *rand.Rand) *Matrix { return matrix.NewRandomSymmetric(n, rng) }

// KernelByName returns one of the built-in DGEMM kernels: "packed" (the
// packed cache-blocked micro-kernel of internal/kernel, the DGEFMM
// default), "blocked" (cache blocked with packing), "vector" (column/AXPY
// oriented) or "naive" (untuned triple loop). The latter three stand in
// for the paper's three machines; nil is returned for unknown names.
func KernelByName(name string) blas.Kernel { return blas.KernelByName(name) }

// PackedKernel returns a fresh instance of the packed cache-blocked kernel
// (the base-case engine DGEFMM uses by default). With compat true its block
// sizes are pinned to the legacy blocked kernel's, making its results
// bit-for-bit identical to DGEMM's — at some cost in speed on hosts whose
// caches want different blocking.
func PackedKernel(compat bool) blas.Kernel { return &kernel.Packed{Compat: compat} }

// DGEMM computes C ← alpha*op(A)*op(B) + beta*C with the standard algorithm
// on the default (blocked) kernel — the routine DGEFMM replaces.
func DGEMM(transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) {
	blas.Dgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DGEFMM computes C ← alpha*op(A)*op(B) + beta*C with the paper's Strassen
// implementation. It accepts exactly the inputs DGEMM accepts and can be
// substituted for it call-for-call. cfg may be nil for the defaults.
func DGEFMM(cfg *Config, transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) {
	strassen.DGEFMM(cfg, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// Multiply is the Matrix-typed convenience form of DGEFMM:
// C ← alpha*op(A)*op(B) + beta*C.
func Multiply(cfg *Config, c *Matrix, transA, transB Transpose, alpha float64, a, b *Matrix, beta float64) {
	strassen.Multiply(cfg, c, transA, transB, alpha, a, b, beta)
}

// DefaultConfig returns the paper's DGEFMM configuration for a kernel
// (nil = the packed cache-blocked default): auto schedule (STRASSEN1 for
// β=0, STRASSEN2 otherwise), dynamic peeling, hybrid cutoff with
// calibrated parameters.
func DefaultConfig(kern blas.Kernel) *Config { return strassen.DefaultConfig(kern) }

// Calibrate reruns the paper's Section 4.2 cutoff measurement on this
// machine for the named kernel and returns the resulting parameters. The
// sweep bounds default to sensible ranges when zero. This is the
// programmatic form of cmd/calibrate.
func Calibrate(kernelName string, seed int64) Params {
	kern := blas.KernelByName(kernelName)
	if kern == nil {
		kern = blas.DefaultKernel
	}
	return cutoff.Calibrate(kern, 16, 256, 8, 8, 128, 4, 512, seed)
}

// SetDefaultParams installs calibrated parameters as the defaults used by
// DefaultConfig for the named kernel.
func SetDefaultParams(kernelName string, p Params) { strassen.SetDefaultParams(kernelName, p) }

// DefaultParamsFor returns the cutoff parameters currently installed for
// the named kernel (the Table 2/3 values for this machine).
func DefaultParamsFor(kernelName string) Params { return strassen.DefaultParams(kernelName) }

// BatchCall is one C ← α·op(A)·op(B) + β·C request of a batch: raw BLAS-style
// operands plus the scalars, independent of every other call in the batch.
type BatchCall = batch.Call

// BatchOptions configures a BatchPool: worker count, queue depth, the base
// DGEFMM Config shared by all calls, and an optional Collector.
type BatchOptions = batch.Options

// BatchPool executes batches of independent DGEFMM calls on a fixed worker
// pool. Each worker owns a reusable workspace arena sized by the shapes it
// serves — after the first batch warms it, same-shape batches run with zero
// fresh workspace allocations — and calls are bucketed by shape so repeated
// shapes share one frozen recursion plan. Intra-call parallelism is scaled
// down so workers × per-call threads stays within GOMAXPROCS.
type BatchPool = batch.Pool

// BatchStats is a snapshot of a BatchPool's counters and per-worker arena
// accounting.
type BatchStats = batch.Stats

// NewBatchCall builds a BatchCall from Matrix operands, panicking on shape
// mismatch exactly as Multiply would.
func NewBatchCall(c *Matrix, transA, transB Transpose, alpha float64, a, b *Matrix, beta float64) BatchCall {
	return batch.NewCall(c, transA, transB, alpha, a, b, beta)
}

// NewBatchPool starts a worker pool for batched DGEFMM execution. Close it
// when done. opts may be nil for the defaults (GOMAXPROCS workers, the
// paper's DGEFMM configuration).
func NewBatchPool(opts *BatchOptions) *BatchPool { return batch.NewPool(opts) }

// BatchedMultiply executes a batch of independent DGEFMM calls through a
// transient worker pool and returns the first error, if any. Results are
// bit-for-bit identical to calling Multiply in a loop with the same cfg.
// For repeated batches, keep a NewBatchPool instead so the workspace arenas
// and shape plans are reused across batches.
func BatchedMultiply(cfg *Config, calls []BatchCall) error { return batch.Multiply(cfg, calls) }

// EigenOptions configures the ISDA symmetric eigensolver.
type EigenOptions = eigen.Options

// EigenResult is a full symmetric eigendecomposition with effort statistics.
type EigenResult = eigen.Result

// SolveSymmetric computes the eigendecomposition of a symmetric matrix with
// the ISDA eigensolver of Section 4.4. Pass opts.Mul = StrassenMultiplier
// (or leave nil for DGEMM) to reproduce the Table 6 comparison.
func SolveSymmetric(a *Matrix, opts *EigenOptions) (*EigenResult, error) {
	return eigen.Solve(a, opts)
}

// GemmEigenMultiplier multiplies with the standard algorithm inside the
// eigensolver (the Table 6 baseline).
type GemmEigenMultiplier = eigen.GemmMultiplier

// StrassenEigenMultiplier multiplies with DGEFMM inside the eigensolver
// (the Table 6 treatment).
type StrassenEigenMultiplier = eigen.StrassenMultiplier

// DGEMMS is the IBM-ESSL-style multiply-only baseline: C = op(A)·op(B)
// (no alpha/beta; see Figure 3 and baselines.DgemmsGeneral).
func DGEMMS(transA, transB Transpose, m, n, k int,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	baselines.DGEMMS(nil, transA, transB, m, n, k, a, lda, b, ldb, c, ldc)
}

// SGEMMS is the CRAY-style baseline (Strassen's original variant; Figure 4).
func SGEMMS(transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	baselines.SGEMMS(nil, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DGEMMW is the Douglas-et-al-style baseline (simple cutoff (11), dynamic
// padding; Figures 5–6).
func DGEMMW(transA, transB Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	baselines.DGEMMW(nil, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// ---- Extensions beyond the paper's core (its Section 5 future work and
// ---- noted gaps); see DESIGN.md §7.

// LU is a blocked LU factorization with partial pivoting whose trailing
// updates run through a pluggable multiplier — the application of the
// paper's reference [3] (Bailey et al., accelerating linear solves with
// Strassen).
type LU = linsolve.LU

// LUOptions configures FactorLU (block size, multiply engine).
type LUOptions = linsolve.Options

// FactorLU computes P·A = L·U with partial pivoting; pass
// StrassenEigenMultiplier in opts.Mul to accelerate the trailing updates
// with DGEFMM.
func FactorLU(a *Matrix, opts *LUOptions) (*LU, error) { return linsolve.Factor(a, opts) }

// SolveLinear solves A·X = B by blocked LU with DGEFMM-accelerated updates.
func SolveLinear(a, b *Matrix) (*Matrix, error) {
	lu, err := linsolve.Factor(a, &linsolve.Options{Mul: StrassenEigenMultiplier{}})
	if err != nil {
		return nil, err
	}
	return lu.Solve(b)
}

// QR is a blocked compact-WY Householder factorization with
// DGEFMM-accelerated block-reflector updates (the Knight [17] connection).
type QR = qr.QR

// QROptions configures FactorQR.
type QROptions = qr.Options

// FactorQR computes A = Q·R for m ≥ n; the result supports QMul, FormQ and
// LeastSquares.
func FactorQR(a *Matrix, opts *QROptions) (*QR, error) { return qr.Factor(a, opts) }

// FastDsyrk computes the symmetric rank-k update C ← alpha·op(A)·op(A)ᵀ +
// beta·C with asymptotically all arithmetic inside DGEFMM (Higham [11]).
// Arguments follow blas.Dsyrk; uplo is 'U' or 'L', trans 'N' or 'T'.
func FastDsyrk(uplo byte, trans Transpose, n, k int, alpha float64,
	a []float64, lda int, beta float64, c []float64, ldc int) {
	fastlevel3.Dsyrk(nil, blas.Uplo(uplo), trans, n, k, alpha, a, lda, beta, c, ldc)
}

// FastDtrsm solves op(A)·X = alpha·B in place for triangular A on the left,
// with the eliminations running through DGEFMM (Higham [11]). uplo is 'U'
// or 'L', diag 'N' or 'U'.
func FastDtrsm(uplo byte, transA Transpose, diag byte, m, n int,
	alpha float64, a []float64, lda int, b []float64, ldb int) {
	fastlevel3.Dtrsm(nil, blas.Uplo(uplo), transA, blas.Diag(diag), m, n, alpha, a, lda, b, ldb)
}

// Cholesky is a blocked L·Lᵀ factorization of a symmetric positive definite
// matrix with DGEFMM-accelerated trailing updates.
type Cholesky = linsolve.Cholesky

// CholeskyOptions configures FactorCholesky.
type CholeskyOptions = linsolve.CholeskyOptions

// FactorCholesky computes the lower Cholesky factor of a symmetric positive
// definite matrix (lower triangle read).
func FactorCholesky(a *Matrix, opts *CholeskyOptions) (*Cholesky, error) {
	return linsolve.FactorCholesky(a, opts)
}

// ZMatrix is a column-major complex matrix.
type ZMatrix = zgemm.ZDense

// NewZMatrix allocates a zeroed r×c complex matrix.
func NewZMatrix(r, c int) *ZMatrix { return zgemm.NewZDense(r, c) }

// ZNoTrans, ZTrans and ZConjTrans select op(X) for the complex routines.
const (
	ZNoTrans   = zgemm.NoTrans
	ZTrans     = zgemm.Trans
	ZConjTrans = zgemm.ConjTrans
)

// ZGEMM computes C ← alpha·op(A)·op(B) + beta·C for complex matrices with
// the straightforward algorithm.
func ZGEMM(transA, transB zgemm.Transpose, m, n, k int, alpha complex128,
	a, b *ZMatrix, beta complex128, c *ZMatrix) {
	zgemm.ZGEMM(transA, transB, m, n, k, alpha, a, b, beta, c)
}

// ZGEFMM computes the complex product via the 3M decomposition with each
// real product on DGEFMM — closing the complex-matrix gap the paper noted
// relative to DGEMMW.
func ZGEFMM(cfg *Config, transA, transB zgemm.Transpose, m, n, k int, alpha complex128,
	a, b *ZMatrix, beta complex128, c *ZMatrix) {
	zgemm.ZGEFMM(cfg, transA, transB, m, n, k, alpha, a, b, beta, c)
}

// MatrixStore is out-of-core matrix storage accessed by tiles (the paper's
// "extend our implementation to use virtual memory" future-work item).
type MatrixStore = outofcore.Store

// MemStore is an accounting in-memory MatrixStore.
type MemStore = outofcore.MemStore

// NewMemStore wraps a matrix as a MatrixStore with I/O accounting.
func NewMemStore(m *Matrix) *MemStore { return outofcore.NewMemStore(m) }

// CreateFileStore makes a file-backed MatrixStore (genuine out-of-core).
func CreateFileStore(path string, rows, cols int) (*outofcore.FileStore, error) {
	return outofcore.CreateFileStore(path, rows, cols)
}

// OutOfCoreOptions configures MultiplyOutOfCore.
type OutOfCoreOptions = outofcore.Options

// MultiplyOutOfCore computes C ← alpha·A·B + beta·C with all operands in
// slow storage, staging tiles through a bounded in-core workspace and
// multiplying tiles with DGEFMM.
func MultiplyOutOfCore(c, a, b MatrixStore, alpha, beta float64, opts *OutOfCoreOptions) error {
	return outofcore.Multiply(c, a, b, alpha, beta, opts)
}

// ServeOptions configures NewGEMMServer (the network serving layer over the
// batch pool: request coalescing, quotas, backpressure, an out-of-core path
// for oversized operands).
type ServeOptions = serve.Options

// GEMMServer is the HTTP GEMM service. Mount Handler on an http.Server and
// Close after shutdown; see cmd/dgefmmd for the production wiring.
type GEMMServer = serve.Server

// NewGEMMServer builds a GEMM service (nil opts = defaults: GOMAXPROCS
// workers, 500µs coalesce window, no quotas).
func NewGEMMServer(opts *ServeOptions) *GEMMServer { return serve.New(opts) }

// GEMMClient calls a GEMM service (a dgefmmd, or any GEMMServer.Handler).
type GEMMClient = serve.Client

// GEMMRequest is one client-side call; operands are row-major.
type GEMMRequest = serve.GEMMRequest

// GEMMResult is a successful client call's outcome.
type GEMMResult = serve.GEMMResult
