// Linear solver: Strassen-accelerated LU factorization.
//
// The paper's reference [3] (Bailey, Lee, Simon 1990) used Strassen's
// algorithm to accelerate dense linear solves: a blocked LU factorization
// spends nearly all its flops in the trailing-matrix update
// A22 ← A22 − L21·U12, which is a rectangular matrix multiplication.
// Plugging DGEFMM into that update accelerates the whole solve.
//
// Run with: go run ./examples/linsolve
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const n = 700
	rng := rand.New(rand.NewSource(5))

	// A well-conditioned random system A·x = b with known solution.
	a := repro.NewRandomMatrix(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
	}
	xTrue := repro.NewRandomMatrix(n, 3, rng)
	b := repro.NewMatrix(n, 3)
	repro.DGEMM(repro.NoTrans, repro.NoTrans, n, 3, n, 1,
		a.Data, a.Stride, xTrue.Data, xTrue.Stride, 0, b.Data, b.Stride)

	solve := func(name string, opts *repro.LUOptions) {
		lu, err := repro.FactorLU(a, opts)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		x, err := lu.Solve(b)
		if err != nil {
			log.Fatal(err)
		}
		var worst float64
		for j := 0; j < 3; j++ {
			for i := 0; i < n; i++ {
				if d := x.At(i, j) - xTrue.At(i, j); d > worst || -d > worst {
					if d < 0 {
						d = -d
					}
					worst = d
				}
			}
		}
		fmt.Printf("%-22s total %7.0f ms   MM %7.0f ms (%d updates)   max |x−x*| = %.2e\n",
			name,
			lu.Stats.Total.Seconds()*1e3,
			lu.Stats.MMTime.Seconds()*1e3, lu.Stats.MMCount,
			worst)
	}

	fmt.Printf("blocked LU with partial pivoting, order %d, block 128\n\n", n)
	solve("updates via DGEMM", &repro.LUOptions{BlockSize: 128})
	solve("updates via DGEFMM", &repro.LUOptions{BlockSize: 128, Mul: repro.StrassenEigenMultiplier{}})
	fmt.Println("\nboth produce the same factorization; the trailing updates are where")
	fmt.Println("Strassen's algorithm accelerates a dense solve (Bailey et al. 1990).")
}
