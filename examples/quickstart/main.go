// Quickstart: DGEFMM as a drop-in DGEMM replacement.
//
// This example multiplies two random matrices three ways — the standard
// algorithm (DGEMM), DGEFMM with default settings, and DGEFMM through the
// raw BLAS-style interface — and verifies they agree. It is the "replacing
// DGEMM with our routine" workflow of the paper's abstract in miniature.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	const m = 600
	rng := rand.New(rand.NewSource(42))

	a := repro.NewRandomMatrix(m, m, rng)
	b := repro.NewRandomMatrix(m, m, rng)

	// 1. The standard algorithm: C1 = A·B.
	c1 := repro.NewMatrix(m, m)
	start := time.Now()
	repro.DGEMM(repro.NoTrans, repro.NoTrans, m, m, m, 1,
		a.Data, a.Stride, b.Data, b.Stride, 0, c1.Data, c1.Stride)
	tGemm := time.Since(start)

	// 2. DGEFMM through the convenience API: C2 = A·B. A nil config means
	// the paper's defaults: Winograd variant, dynamic peeling, hybrid
	// cutoff criterion with calibrated parameters.
	c2 := repro.NewMatrix(m, m)
	start = time.Now()
	repro.Multiply(nil, c2, repro.NoTrans, repro.NoTrans, 1, a, b, 0)
	tFmm := time.Since(start)

	// 3. DGEFMM through the BLAS-style call, with the general update form
	// C3 ← (1/3)·Aᵀ·B + (1/4)·C3 that vendor Strassen codes of the era did
	// not support natively.
	c3 := repro.NewRandomMatrix(m, m, rng)
	repro.DGEFMM(nil, repro.Trans, repro.NoTrans, m, m, m, 1.0/3,
		a.Data, a.Stride, b.Data, b.Stride, 1.0/4, c3.Data, c3.Stride)

	if !c1.EqualApprox(c2, 1e-9) {
		log.Fatal("DGEMM and DGEFMM disagree")
	}
	fmt.Printf("order %d multiply:\n", m)
	fmt.Printf("  DGEMM  (standard): %8.1f ms\n", tGemm.Seconds()*1e3)
	fmt.Printf("  DGEFMM (Strassen): %8.1f ms   (%.2fx)\n", tFmm.Seconds()*1e3,
		tGemm.Seconds()/tFmm.Seconds())
	fmt.Printf("  results agree to %.1e\n", 1e-9)
	fmt.Println("  general C ← αAᵀB + βC handled natively by DGEFMM ✓")
}
