// Batched DGEFMM: many independent multiplies through one worker pool.
//
// Real multiply-heavy workloads rarely make one huge DGEMM call; they make
// many medium ones. The batch engine runs C_i ← α_i·op(A_i)·op(B_i) + β_i·C_i
// across a fixed worker pool where each worker owns a reusable workspace
// arena (sized by the paper's Table 1 bounds — per worker, not per batch)
// and same-shape calls share one frozen recursion plan. After the first
// batch warms the arenas, steady-state batches allocate no fresh workspace
// at all.
//
// Run with: go run ./examples/batched
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro"
)

func main() {
	const order, calls = 256, 32
	rng := rand.New(rand.NewSource(7))

	// One shared A (e.g. a fixed model matrix), per-call B_i and C_i.
	a := repro.NewRandomMatrix(order, order, rng)
	batch := make([]repro.BatchCall, calls)
	for i := range batch {
		b := repro.NewRandomMatrix(order, order, rng)
		c := repro.NewMatrix(order, order)
		batch[i] = repro.NewBatchCall(c, repro.NoTrans, repro.NoTrans, 1, a, b, 0)
	}

	// One-shot form: BatchedMultiply runs the batch through a transient pool
	// and is bit-for-bit identical to calling Multiply in a loop.
	if err := repro.BatchedMultiply(nil, batch); err != nil {
		panic(err)
	}

	// Persistent form: keep the pool when batches repeat, so plans and
	// arenas are reused across batches.
	pool := repro.NewBatchPool(&repro.BatchOptions{Collector: repro.NewCollector()})
	defer pool.Close()

	for round := 1; round <= 3; round++ {
		start := time.Now()
		if err := pool.Execute(batch); err != nil {
			panic(err)
		}
		s := pool.Stats()
		var fresh, reused int64
		for _, ar := range s.Arenas {
			fresh += ar.Allocs
			reused += ar.Reused
		}
		fmt.Printf("batch %d: %d calls in %7.1fms  (workers %d, arena fresh allocs %d, reuses %d)\n",
			round, calls, float64(time.Since(start).Microseconds())/1000, s.Workers, fresh, reused)
	}

	s := pool.Stats()
	fmt.Printf("\nshape buckets planned: %d; planned per-worker workspace: %d words\n", s.Buckets, s.PlanWords)
	fmt.Printf("paper Table 1 bound for %d×%d at β=0: 2m²/3 = %d words per worker\n",
		order, order, 2*order*order/3)
	fmt.Printf("GOMAXPROCS=%d — batched speedup over a sequential loop needs >1 CPU;\n", runtime.GOMAXPROCS(0))
	fmt.Println("the arenas' zero steady-state allocation holds on any machine (fresh allocs stop growing after batch 1).")
}
