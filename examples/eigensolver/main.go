// Eigensolver: accelerating a real application with DGEFMM.
//
// The paper's Section 4.4 demonstrates DGEFMM inside a divide-and-conquer
// symmetric eigensolver (the PRISM ISDA), whose kernel operation is matrix
// multiplication: "Incorporating Strassen's algorithm into this eigensolver
// was accomplished easily by renaming all calls to DGEMM as calls to
// DGEFMM." This example does exactly that swap via the Multiplier option
// and reports the Table 6 quantities: total time and MM time.
//
// Run with: go run ./examples/eigensolver
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro"
)

func main() {
	const n = 256
	rng := rand.New(rand.NewSource(7))
	a := repro.NewRandomSymmetric(n, rng)

	solveWith := func(mul interface {
		Name() string
		Mul(*repro.Matrix, float64, *repro.Matrix, *repro.Matrix, float64)
	}) *repro.EigenResult {
		start := time.Now()
		res, err := repro.SolveSymmetric(a, &repro.EigenOptions{Mul: mul, BaseSize: 32})
		if err != nil {
			log.Fatalf("eigensolver failed: %v", err)
		}
		total := time.Since(start)
		fmt.Printf("using %-6s  total %7.2fs   MM %7.2fs (%2.0f%%)   %d MM calls\n",
			mul.Name(), total.Seconds(), res.Stats.MMTime.Seconds(),
			100*res.Stats.MMTime.Seconds()/total.Seconds(), res.Stats.MMCount)
		return res
	}

	fmt.Printf("ISDA eigensolver on a random symmetric %d×%d matrix\n\n", n, n)
	gemm := solveWith(repro.GemmEigenMultiplier{})
	strassen := solveWith(repro.StrassenEigenMultiplier{})

	// The two engines must produce the same spectrum.
	var worst float64
	for i := range gemm.Values {
		if d := math.Abs(gemm.Values[i] - strassen.Values[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nspectra agree to %.2e across %d eigenvalues\n", worst, n)
	fmt.Printf("MM-time saving from the one-line DGEMM→DGEFMM swap: %.1f%%\n",
		100*(1-strassen.Stats.MMTime.Seconds()/gemm.Stats.MMTime.Seconds()))
}
