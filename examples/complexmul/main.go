// Complex matrices: ZGEFMM via the 3M algorithm.
//
// The paper notes that "DGEMMW also provides routines for multiplying
// complex matrices, a feature not contained in our package". This example
// closes that gap the way vendor libraries of the era did (ESSL ZGEMMS):
// the complex product is formed from three real products — T1 = Ar·Br,
// T2 = Ai·Bi, T3 = (Ar+Ai)(Br+Bi) — and each real product runs on DGEFMM,
// so the 3M saving (25 % of the real multiplies) composes with Strassen's.
//
// Run with: go run ./examples/complexmul
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro"
)

func main() {
	const n = 500
	rng := rand.New(rand.NewSource(13))

	a := repro.NewZMatrix(n, n)
	b := repro.NewZMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a.Set(i, j, complex(2*rng.Float64()-1, 2*rng.Float64()-1))
			b.Set(i, j, complex(2*rng.Float64()-1, 2*rng.Float64()-1))
		}
	}

	// Reference: the straightforward complex algorithm.
	c1 := repro.NewZMatrix(n, n)
	start := time.Now()
	repro.ZGEMM(repro.ZNoTrans, repro.ZNoTrans, n, n, n, 1, a, b, 0, c1)
	t4m := time.Since(start)

	// 3M on DGEFMM.
	c2 := repro.NewZMatrix(n, n)
	start = time.Now()
	repro.ZGEFMM(nil, repro.ZNoTrans, repro.ZNoTrans, n, n, n, 1, a, b, 0, c2)
	t3m := time.Since(start)

	var worst float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d := c1.At(i, j) - c2.At(i, j)
			if h := math.Hypot(real(d), imag(d)); h > worst {
				worst = h
			}
		}
	}

	fmt.Printf("complex %d×%d multiply:\n", n, n)
	fmt.Printf("  straightforward ZGEMM: %7.0f ms\n", t4m.Seconds()*1e3)
	fmt.Printf("  ZGEFMM (3M + Strassen): %6.0f ms   (%.2fx)\n", t3m.Seconds()*1e3,
		t4m.Seconds()/t3m.Seconds())
	fmt.Printf("  max elementwise |Δ|: %.2e\n", worst)
	fmt.Println("  conjugate-transpose operands (op='C') supported throughout ✓")
}
