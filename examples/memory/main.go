// Memory accounting: reproducing the paper's Table 1 claims live.
//
// The paper's second headline contribution is workspace reduction: DGEFMM
// needs 2m²/3 extra words when β = 0 (STRASSEN1, which uses C itself as
// scratch) and m² in general (STRASSEN2, three temporaries enabled by
// recursive multiply-accumulate) — "a 40 to more than 70 percent reduction"
// over the other Strassen codes of the era.
//
// This example plugs the accounting allocator into each schedule and prints
// measured peak workspace next to the paper's bounds.
//
// Run with: go run ./examples/memory
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	const m = 512
	rng := rand.New(rand.NewSource(11))
	a := repro.NewRandomMatrix(m, m, rng)
	b := repro.NewRandomMatrix(m, m, rng)

	fmt.Printf("workspace high-water marks for a %d×%d multiply (m² = %d words)\n\n", m, m, m*m)
	fmt.Printf("%-34s %-12s %14s %10s\n", "configuration", "paper bound", "measured words", "× m²")

	measure := func(name, bound string, beta float64) {
		tr := repro.NewMemoryTracker()
		cfg := repro.DefaultConfig(repro.KernelByName("naive"))
		cfg.Criterion = repro.SimpleCriterion{Tau: 16} // recurse deep: worst case
		cfg.Tracker = tr
		c := repro.NewRandomMatrix(m, m, rng)
		repro.DGEFMM(cfg, repro.NoTrans, repro.NoTrans, m, m, m, 1,
			a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
		fmt.Printf("%-34s %-12s %14d %10.3f\n", name, bound, tr.Peak(), float64(tr.Peak())/float64(m*m))
		if tr.Live() != 0 {
			fmt.Println("  WARNING: workspace leak!")
		}
	}

	measure("DGEFMM, β = 0 (STRASSEN1)", "2m²/3", 0)
	measure("DGEFMM, β ≠ 0 (STRASSEN2)", "m²", 0.5)

	fmt.Println("\nfor comparison, the other codes of the paper's Table 1 (bounds):")
	fmt.Println("  CRAY SGEMMS       7m²/3 ≈ 2.333 m²")
	fmt.Println("  IBM ESSL DGEMMS   1.40 m²   (β ≠ 0 not supported at all)")
	fmt.Println("  DGEMMW            2m²/3 (β=0), 5m²/3 (β≠0)")
	fmt.Println("\nDGEFMM's β≠0 footprint of m² is the 40–57 % reduction the paper reports.")
}
