// Rectangular matrices and cutoff criteria.
//
// The paper's key tuning contribution is the hybrid cutoff criterion (15):
// the widely-used simple criterion (11) stops recursion as soon as any
// dimension drops to the square cutoff τ, which forgoes profitable
// recursion on long-thin problems (the paper's example: m=160, n=957,
// k=1957 on the RS/6000, where an extra level saves 8.6 %).
//
// This example times a thin-by-large multiply under the paper's criteria
// and shows the hybrid criterion applying the extra recursion.
//
// Run with: go run ./examples/rectangular
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	// A thin-by-large problem in the spirit of the paper's (160, 957, 1957)
	// anecdote, scaled to this library's calibrated cutoffs.
	params := repro.DefaultParamsFor("blocked")
	m := params.Tau * 3 / 4 // below the square cutoff...
	k := params.Tau * 5     // ...but the other dimensions are large
	n := params.Tau * 4

	fmt.Printf("thin-by-large multiply: (%d × %d) · (%d × %d), square cutoff τ=%d\n\n", m, k, k, n, params.Tau)

	a := repro.NewRandomMatrix(m, k, rng)
	b := repro.NewRandomMatrix(k, n, rng)

	run := func(name string, crit repro.Criterion) *repro.Matrix {
		cfg := repro.DefaultConfig(nil)
		cfg.Criterion = crit
		c := repro.NewMatrix(m, n)
		start := time.Now()
		repro.Multiply(cfg, c, repro.NoTrans, repro.NoTrans, 1, a, b, 0)
		fmt.Printf("  %-28s %8.1f ms   recursion at top level: %v\n",
			name, time.Since(start).Seconds()*1e3, crit.Recurse(m, k, n))
		return c
	}

	c1 := run("simple criterion (11)", repro.SimpleCriterion{Tau: params.Tau})
	c2 := run("Higham scaled criterion (12)", repro.ScaledCriterion{Tau: params.Tau})
	c3 := run("hybrid criterion (15)", params.Hybrid())

	if !c1.EqualApprox(c2, 1e-8) || !c1.EqualApprox(c3, 1e-8) {
		fmt.Println("  WARNING: results disagree!")
		return
	}
	fmt.Println("\nall criteria produce the same product; only the recursion decisions differ.")
	fmt.Println("the hybrid criterion recurses on thin-by-large shapes the simple criterion rejects.")
}
