// Out-of-core multiplication: matrices bigger than memory.
//
// The paper's Section 5 lists "extend our implementation to use virtual
// memory" as future work. This example multiplies file-backed matrices
// through a deliberately tiny in-core workspace: tiles stream from disk,
// each tile product runs on DGEFMM, and the slow-storage traffic is
// reported against the tiled-algorithm prediction.
//
// Run with: go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	const n = 384
	const workspace = 3 * 64 * 64 // three 64×64 tiles in core at a time

	dir, err := os.MkdirTemp("", "repro-ooc")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rng := rand.New(rand.NewSource(9))
	a := repro.NewRandomMatrix(n, n, rng)
	b := repro.NewRandomMatrix(n, n, rng)

	// Stage A and B to disk (they would arrive there in a real workload).
	fa, err := repro.CreateFileStore(filepath.Join(dir, "a.mat"), n, n)
	if err != nil {
		log.Fatal(err)
	}
	defer fa.Close()
	if err := fa.WriteTile(0, 0, a); err != nil {
		log.Fatal(err)
	}
	fb, err := repro.CreateFileStore(filepath.Join(dir, "b.mat"), n, n)
	if err != nil {
		log.Fatal(err)
	}
	defer fb.Close()
	if err := fb.WriteTile(0, 0, b); err != nil {
		log.Fatal(err)
	}
	fc, err := repro.CreateFileStore(filepath.Join(dir, "c.mat"), n, n)
	if err != nil {
		log.Fatal(err)
	}
	defer fc.Close()

	if err := repro.MultiplyOutOfCore(fc, fa, fb, 1, 0,
		&repro.OutOfCoreOptions{WorkspaceWords: workspace}); err != nil {
		log.Fatal(err)
	}

	// Verify against the in-core product.
	got := repro.NewMatrix(n, n)
	if err := fc.ReadTile(0, 0, got); err != nil {
		log.Fatal(err)
	}
	want := repro.NewMatrix(n, n)
	repro.Multiply(nil, want, repro.NoTrans, repro.NoTrans, 1, a, b, 0)
	if !got.EqualApprox(want, 1e-8) {
		log.Fatal("out-of-core result differs from in-core")
	}

	fmt.Printf("multiplied two %d×%d file-backed matrices through a %d-word workspace\n", n, n, workspace)
	fmt.Printf("in-core footprint: %.1f%% of one operand (%d of %d words)\n",
		100*float64(workspace)/float64(n*n), workspace, n*n)
	fmt.Println("result verified against the in-core DGEFMM product ✓")
}
